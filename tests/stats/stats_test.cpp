#include <gtest/gtest.h>

#include "stats/deficiency.hpp"
#include "stats/link_stats.hpp"
#include "stats/time_series.hpp"

namespace rtmac::stats {
namespace {

TEST(LinkStatsTest, AccumulatesTotals) {
  LinkStatsCollector stats{2};
  stats.record({2, 1}, {2, 0});
  stats.record({1, 1}, {1, 1});
  EXPECT_EQ(stats.intervals(), 2u);
  EXPECT_EQ(stats.total_arrivals(0), 3u);
  EXPECT_EQ(stats.total_delivered(0), 3u);
  EXPECT_EQ(stats.total_arrivals(1), 2u);
  EXPECT_EQ(stats.total_delivered(1), 1u);
}

TEST(LinkStatsTest, TimelyThroughputIsPerInterval) {
  LinkStatsCollector stats{1};
  stats.record({3}, {2});
  stats.record({3}, {1});
  EXPECT_DOUBLE_EQ(stats.timely_throughput(0), 1.5);
  EXPECT_EQ(stats.timely_throughputs(), (std::vector<double>{1.5}));
}

TEST(LinkStatsTest, DeliveryRatio) {
  LinkStatsCollector stats{1};
  stats.record({4}, {3});
  EXPECT_DOUBLE_EQ(stats.delivery_ratio(0), 0.75);
}

TEST(LinkStatsTest, DeliveryRatioWithNoArrivalsIsOne) {
  LinkStatsCollector stats{1};
  stats.record({0}, {0});
  EXPECT_DOUBLE_EQ(stats.delivery_ratio(0), 1.0);
}

TEST(LinkStatsTest, EmptyCollectorThroughputZero) {
  LinkStatsCollector stats{1};
  EXPECT_DOUBLE_EQ(stats.timely_throughput(0), 0.0);
}

TEST(LinkStatsTest, ResetClears) {
  LinkStatsCollector stats{1};
  stats.record({1}, {1});
  stats.reset();
  EXPECT_EQ(stats.intervals(), 0u);
  EXPECT_EQ(stats.total_delivered(0), 0u);
}

TEST(DeficiencyTest, Definition1PositivePart) {
  LinkStatsCollector stats{2};
  stats.record({1, 1}, {1, 0});
  stats.record({1, 1}, {1, 0});
  // Throughputs: (1.0, 0.0). q = (0.5, 0.8).
  const RateVector q{0.5, 0.8};
  const auto def = per_link_deficiency(stats, q);
  EXPECT_DOUBLE_EQ(def[0], 0.0);  // ahead of requirement, clipped
  EXPECT_DOUBLE_EQ(def[1], 0.8);
  EXPECT_DOUBLE_EQ(total_deficiency(stats, q), 0.8);
}

TEST(DeficiencyTest, GroupDeficiencySumsSubset) {
  LinkStatsCollector stats{4};
  stats.record({1, 1, 1, 1}, {0, 0, 1, 1});
  const RateVector q{0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(group_deficiency(stats, q, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(group_deficiency(stats, q, {2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(group_deficiency(stats, q, {}), 0.0);
}

TEST(TimeSeriesTest, CumulativeMean) {
  TimeSeries s;
  s.push(1.0);
  s.push(3.0);
  s.push(5.0);
  EXPECT_EQ(s.cumulative_mean(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(TimeSeriesTest, MovingAverage) {
  TimeSeries s;
  for (double v : {2.0, 4.0, 6.0, 8.0}) s.push(v);
  const auto ma = s.moving_average(2);
  EXPECT_DOUBLE_EQ(ma[0], 2.0);
  EXPECT_DOUBLE_EQ(ma[1], 3.0);
  EXPECT_DOUBLE_EQ(ma[2], 5.0);
  EXPECT_DOUBLE_EQ(ma[3], 7.0);
}

TEST(ConvergenceTest, DetectsSettlingPoint) {
  TimeSeries s;
  // Starts at 0 then jumps to 1: the cumulative mean approaches 1 slowly.
  for (int i = 0; i < 10; ++i) s.push(0.0);
  for (int i = 0; i < 2000; ++i) s.push(1.0);
  const auto k = convergence_interval(s, 1.0, 0.05);
  ASSERT_TRUE(k.has_value());
  // Cumulative mean reaches 0.95 when 10 zeros are diluted 20x.
  EXPECT_GT(*k, 100u);
  EXPECT_LT(*k, 500u);
}

TEST(ConvergenceTest, NeverSettlesReturnsNullopt) {
  TimeSeries s;
  for (int i = 0; i < 100; ++i) s.push(0.0);
  EXPECT_FALSE(convergence_interval(s, 1.0, 0.01).has_value());
}

TEST(ConvergenceTest, ImmediateConvergenceIsZero) {
  TimeSeries s;
  for (int i = 0; i < 10; ++i) s.push(1.0);
  const auto k = convergence_interval(s, 1.0, 0.01);
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(*k, 0u);
}

}  // namespace
}  // namespace rtmac::stats
