// The crash flight recorder: an armed recorder dumps a valid JSONL
// postmortem (schema header, failure record, ring tail, metrics snapshot)
// from the check-failure path before the handler runs; arm/disarm manage
// the process-wide hook; direct dump() works without a failure.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "obs/json.hpp"
#include "util/check.hpp"

namespace rtmac::obs {
namespace {

struct CheckFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void throwing_handler(const char*, const char*, const char*, int,
                      const std::string& message) {
  throw CheckFailure(message);
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<std::map<std::string, std::string>> read_jsonl(const std::string& path) {
  std::ifstream in{path};
  EXPECT_TRUE(in.is_open()) << path;
  std::string line;
  std::vector<std::map<std::string, std::string>> out;
  while (std::getline(in, line)) {
    auto parsed = parse_flat_json(line);
    EXPECT_TRUE(parsed.has_value()) << line;
    if (parsed.has_value()) out.push_back(std::move(*parsed));
  }
  return out;
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { prev_ = set_check_failure_handler(&throwing_handler); }
  void TearDown() override { set_check_failure_handler(prev_); }
  CheckFailureHandler prev_ = nullptr;
};

TEST_F(FlightRecorderTest, ArmDisarmLifecycle) {
  FlightRecorder rec{temp_path("rtmac_fr_lifecycle.jsonl")};
  EXPECT_FALSE(rec.armed());
  rec.arm();
  EXPECT_TRUE(rec.armed());
  rec.arm();  // re-arming the same recorder is fine
  rec.disarm();
  EXPECT_FALSE(rec.armed());
  rec.disarm();  // idempotent
}

TEST_F(FlightRecorderTest, DirectDumpWritesValidJsonl) {
  const std::string path = temp_path("rtmac_fr_direct.jsonl");
  FlightRecorder rec{path, /*ring_capacity=*/8};
  rec.ring().record(TimePoint::origin(), sim::TraceKind::kIntervalStart, sim::kNoLink, 0);
  MetricsRegistry reg;
  reg.counter("c").inc(3);
  rec.watch(&reg);
  ASSERT_TRUE(rec.dump("RTMAC_ASSERT", "x > 0", "fake.cpp", 42, "x was -1"));

  const auto lines = read_jsonl(path);
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0].at("schema"), "\"rtmac.flightrec\"");
  EXPECT_EQ(lines[0].at("version"), std::to_string(kFlightRecorderSchemaVersion));
  EXPECT_EQ(lines[1].at("record"), "\"failure\"");
  EXPECT_EQ(lines[1].at("kind"), "\"RTMAC_ASSERT\"");
  EXPECT_EQ(lines[1].at("expr"), "\"x > 0\"");
  EXPECT_EQ(lines[1].at("line"), "42");
  EXPECT_EQ(lines[1].at("message"), "\"x was -1\"");
  EXPECT_EQ(lines[1].at("trace_events"), "1");
  EXPECT_EQ(lines[2].at("record"), "\"trace\"");
  EXPECT_EQ(lines[2].at("kind"), "\"interval-start\"");
  EXPECT_EQ(lines[2].at("link"), "-1");
  EXPECT_EQ(lines[3].at("record"), "\"metric\"");
  EXPECT_EQ(lines[3].at("name"), "\"c\"");
  std::remove(path.c_str());
}

// The end-to-end failure path: run a real network with the recorder's ring
// attached, then trip a contract. The hook must write the dump before the
// throwing handler unwinds, and the dump must carry the run's trace tail.
TEST_F(FlightRecorderTest, CheckFailureDumpsBeforeHandlerRuns) {
  const std::string path = temp_path("rtmac_fr_failure.jsonl");
  std::remove(path.c_str());

  FlightRecorder rec{path, /*ring_capacity=*/256};
  MetricsRegistry reg;
  net::Network network{expfw::video_symmetric(0.55, 0.9, 93), expfw::dbdp_factory()};
  network.attach_metrics(&reg);
  network.attach_tracer(&rec.ring());
  rec.watch(&reg);
  rec.arm();
  network.run(5);

  EXPECT_THROW(RTMAC_UNREACHABLE("forced failure for the flight recorder"),
               CheckFailure);
  rec.disarm();

  const auto lines = read_jsonl(path);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0].at("schema"), "\"rtmac.flightrec\"");
  EXPECT_EQ(lines[1].at("record"), "\"failure\"");
  EXPECT_EQ(lines[1].at("kind"), "\"RTMAC_UNREACHABLE\"");
  EXPECT_EQ(lines[1].at("message"), "\"forced failure for the flight recorder\"");
  std::size_t traces = 0;
  std::size_t metrics = 0;
  for (const auto& line : lines) {
    const auto it = line.find("record");
    if (it == line.end()) continue;
    if (it->second == "\"trace\"") ++traces;
    if (it->second == "\"metric\"") ++metrics;
  }
  EXPECT_GT(traces, 0u) << "ring tail missing from the dump";
  EXPECT_LE(traces, 256u) << "ring bound not respected";
  EXPECT_GT(metrics, 0u) << "metrics snapshot missing from the dump";
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, DisarmedRecorderWritesNothing) {
  const std::string path = temp_path("rtmac_fr_disarmed.jsonl");
  std::remove(path.c_str());
  {
    FlightRecorder rec{path};
    rec.arm();
    // Scope exit disarms via the destructor.
  }
  EXPECT_THROW(RTMAC_UNREACHABLE("no recorder armed"), CheckFailure);
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace rtmac::obs
