// Forced-failure selftest for the flight recorder, run by CI as a plain
// binary (not gtest): arms a recorder around a short real run, then trips
// RTMAC_UNREACHABLE — which is active in every build configuration — so the
// process must exit abnormally AND leave the dump artifact behind. CI
// asserts the nonzero exit, validates the artifact, and uploads it.
//
//   usage: flight_recorder_selftest <dump-path>
#include <cstdio>
#include <cstdlib>

#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <dump-path>\n", argv[0]);
    return 2;
  }

  obs::FlightRecorder recorder{argv[1]};
  obs::MetricsRegistry registry;
  net::Network network{expfw::video_symmetric(0.55, 0.9, 4242), expfw::dbdp_factory()};
  network.attach_metrics(&registry);
  network.attach_tracer(&recorder.ring());
  recorder.watch(&registry);
  recorder.arm();
  network.run(10);

  // The default failure handler aborts after the hook dumps; the selftest
  // therefore must NOT reach the return below.
  RTMAC_UNREACHABLE("flight recorder selftest: forced contract failure");
  return 0;  // unreachable; reaching it would make the selftest pass wrongly
}
