// Histogram::quantile edge cases (satellite regression coverage): NaN
// quantile requests, the all-samples-in-overflow layout, extreme-q
// clamping, and single-sample collapse. The NaN-q case is a genuine fixed
// bug: NaN survives std::clamp unchanged, so the old code fell through to
// the rank computation and cast NaN to an integer rank (UB).
#include <gtest/gtest.h>

#include <cmath>

#include "obs/metrics.hpp"

namespace rtmac::obs {
namespace {

TEST(HistogramEdgeTest, NanQuantileRequestReturnsNan) {
  Histogram h{{1.0, 2.0}};
  h.observe(1.5);
  EXPECT_TRUE(std::isnan(h.quantile(std::nan(""))));
}

TEST(HistogramEdgeTest, EmptyHistogramReturnsNanForAnyQ) {
  Histogram h{{1.0}};
  EXPECT_TRUE(std::isnan(h.quantile(0.0)));
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.quantile(1.0)));
  EXPECT_TRUE(std::isnan(h.quantile(std::nan(""))));
}

TEST(HistogramEdgeTest, AllSamplesInOverflowBucket) {
  // Every observation beyond the last bound: the quantile walk must land in
  // the overflow bucket and stay inside the observed range.
  Histogram h{{1.0, 2.0}};
  for (int i = 0; i < 10; ++i) h.observe(100.0 + i);
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 100.0);
  EXPECT_LE(p50, 109.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 109.0);
}

TEST(HistogramEdgeTest, ExtremeQClampsToObservedRange) {
  Histogram h{{1.0, 2.0, 4.0}};
  h.observe(0.5);
  h.observe(3.0);
  EXPECT_DOUBLE_EQ(h.quantile(-10.0), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(10.0), 3.0);
}

TEST(HistogramEdgeTest, SingleSampleCollapsesEveryQuantile) {
  Histogram h{{10.0}};
  h.observe(3.0);
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 3.0) << "q=" << q;
  }
}

}  // namespace
}  // namespace rtmac::obs
