// The metrics registry contract: instrument semantics (counter, gauge,
// histogram with quantile readout), stable get-or-create handles, the
// deterministic schema-versioned JSONL export (validated by round-tripping
// through the flat-JSON parser), and — load-bearing for the whole design —
// that attaching a registry never perturbs simulation results.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "obs/collect.hpp"
#include "obs/json.hpp"

namespace rtmac::obs {
namespace {

TEST(CounterTest, MonotoneIncrements) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(HistogramTest, CountsSumAndBuckets) {
  Histogram h{{1.0, 2.0, 4.0}};
  for (const double v : {0.5, 1.5, 3.0, 3.5, 100.0}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 108.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 108.5 / 5.0);
  // One overflow bucket beyond the configured bounds.
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);  // 0.5 <= 1
  EXPECT_EQ(h.bucket_counts()[1], 1u);  // 1.5 <= 2
  EXPECT_EQ(h.bucket_counts()[2], 2u);  // 3.0, 3.5 <= 4
  EXPECT_EQ(h.bucket_counts()[3], 1u);  // 100 -> +inf
}

TEST(HistogramTest, QuantileEdges) {
  Histogram empty{{1.0, 2.0}};
  EXPECT_TRUE(std::isnan(empty.quantile(0.5)));
  EXPECT_TRUE(std::isnan(empty.min()));
  EXPECT_TRUE(std::isnan(empty.max()));
  EXPECT_TRUE(std::isnan(empty.mean()));

  Histogram h{{1.0, 2.0, 4.0, 8.0}};
  for (int i = 0; i < 100; ++i) h.observe(1.5);
  h.observe(7.5);
  // q clamped; q=0 and q=1 report the exact observed extremes.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 7.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.5);
  // The median rank lands in the (1, 2] bucket; interpolation stays inside
  // the observed range.
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  // p99+ of 101 samples reaches the outlier's bucket.
  EXPECT_GT(h.quantile(0.999), 4.0);
}

TEST(HistogramTest, SingleSampleQuantilesCollapse) {
  Histogram h{{10.0}};
  h.observe(3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
}

TEST(LogBoundsTest, GeometricLadder) {
  const auto b = log_bounds(1.0, 8.0, 2.0);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
  EXPECT_DOUBLE_EQ(b[2], 4.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
}

TEST(RegistryTest, HandlesAreStableAndGetOrCreate) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("a.count");
  c1.inc(3);
  // Same name -> same instrument; creating others must not invalidate it.
  for (int i = 0; i < 100; ++i) {
    std::string name = "g";  // two-step append: gcc 12 -O2 misfires -Wrestrict on "g" + to_string(i)
    name += std::to_string(i);
    reg.gauge(name);
  }
  Counter& c2 = reg.counter("a.count");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 3u);
  // Re-registering a histogram keeps the original bounds.
  Histogram& h1 = reg.histogram("h", {1.0, 2.0});
  Histogram& h2 = reg.histogram("h", {5.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(RegistryTest, LinkMetricNaming) {
  EXPECT_EQ(link_metric("phy.tx_data", 3), "phy.tx_data.link3");
  EXPECT_EQ(link_metric("core.debt", 0), "core.debt.link0");
}

// The JSONL export must parse line by line with the bundled flat parser and
// round-trip every recorded value — this is the contract CI's
// well-formedness check and any downstream tooling rely on.
TEST(RegistryTest, JsonlExportRoundTrips) {
  MetricsRegistry reg;
  reg.counter("z.count").inc(7);
  reg.gauge("a.gauge").set(0.25);
  Histogram& h = reg.histogram("m.hist", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);

  std::ostringstream out;
  write_metrics_header(out);
  reg.write_jsonl(out, "\"scheme\":\"LDF\",\"rep\":0");

  std::istringstream in{out.str()};
  std::string line;
  // Header line carries the schema id + version.
  ASSERT_TRUE(std::getline(in, line));
  auto header = parse_flat_json(line);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->at("schema"), "\"rtmac.metrics\"");
  EXPECT_EQ(header->at("version"), std::to_string(kMetricsSchemaVersion));

  // Metric lines come out in name order, each carrying the context fields.
  std::vector<std::map<std::string, std::string>> lines;
  while (std::getline(in, line)) {
    auto parsed = parse_flat_json(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(parsed->at("scheme"), "\"LDF\"");
    EXPECT_EQ(parsed->at("rep"), "0");
    lines.push_back(std::move(*parsed));
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].at("name"), "\"a.gauge\"");
  EXPECT_EQ(lines[0].at("type"), "\"gauge\"");
  EXPECT_EQ(lines[0].at("value"), "0.25");
  EXPECT_EQ(lines[1].at("name"), "\"m.hist\"");
  EXPECT_EQ(lines[1].at("type"), "\"histogram\"");
  EXPECT_EQ(lines[1].at("count"), "2");
  EXPECT_EQ(lines[1].at("sum"), "5.5");
  EXPECT_EQ(lines[2].at("name"), "\"z.count\"");
  EXPECT_EQ(lines[2].at("type"), "\"counter\"");
  EXPECT_EQ(lines[2].at("value"), "7");
}

TEST(JsonTest, NumberFormattingIsDeterministicAndFinite) {
  EXPECT_EQ(json_number(0.25), "0.25");
  EXPECT_EQ(json_number(std::int64_t{-3}), "-3");
  EXPECT_EQ(json_number(std::uint64_t{18446744073709551615ULL}),
            "18446744073709551615");
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(INFINITY), "null");
}

TEST(JsonTest, QuoteUnquoteRoundTrip) {
  const std::string raw = "a \"b\"\\\n\tc";
  const auto unquoted = json_unquote(json_quote(raw));
  ASSERT_TRUE(unquoted.has_value());
  EXPECT_EQ(*unquoted, raw);
  EXPECT_FALSE(json_unquote("not-quoted").has_value());
}

// Two identically-seeded networks, one instrumented and one not, must
// produce bit-identical results: the whole observability layer is read-only
// with respect to the simulation.
TEST(ObservabilityTest, AttachedRegistryDoesNotPerturbResults) {
  const auto make = [] {
    return net::Network{expfw::video_symmetric(0.55, 0.9, 77), expfw::dbdp_factory()};
  };
  net::Network plain = make();
  plain.run(50);

  net::Network observed = make();
  MetricsRegistry registry;
  observed.attach_metrics(&registry);
  observed.run(50);

  EXPECT_EQ(plain.simulator().events_executed(), observed.simulator().events_executed());
  EXPECT_DOUBLE_EQ(plain.total_deficiency(), observed.total_deficiency());
  for (LinkId n = 0; n < 20; ++n) {
    EXPECT_DOUBLE_EQ(plain.stats().timely_throughput(n),
                     observed.stats().timely_throughput(n));
  }
  // The instrumented run actually recorded something.
  EXPECT_GT(registry.size(), 0u);
}

// collect_network_metrics needs no live registry: it reads the always-on
// accounting, so end-of-run metrics are available at zero in-run cost.
TEST(ObservabilityTest, CollectWorksWithoutLiveAttachment) {
  net::Network network{expfw::video_symmetric(0.55, 0.9, 78), expfw::dbdp_factory()};
  network.run(20);
  MetricsRegistry registry;
  collect_network_metrics(registry, network);

  EXPECT_GT(registry.counter("phy.tx_data").value(), 0u);
  EXPECT_GT(registry.counter("sim.events_executed").value(), 0u);
  const double busy = registry.gauge("phy.busy_fraction").value();
  EXPECT_GT(busy, 0.0);
  EXPECT_LE(busy, 1.0);
  for (LinkId n = 0; n < 20; ++n) {
    const double rate = registry.gauge(link_metric("link.delivery_rate", n)).value();
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  EXPECT_GE(registry.gauge("net.deficiency").value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.gauge("net.intervals").value(), 20.0);
}

// Regression: phy.busy_fraction must be channel occupancy (union of busy
// periods), not summed airtime over sim time. Under a colliding scheme the
// summed airtime double-counts overlaps and can exceed the sim duration, so
// the old computation reported a "fraction" above 1.
TEST(ObservabilityTest, BusyFractionStaysAFractionUnderCollisions) {
  net::Network network{expfw::video_symmetric(0.9, 0.9, 79), expfw::fcsma_factory()};
  network.run(40);
  ASSERT_GT(network.medium().counters().collisions, 0u)
      << "scenario must actually collide to exercise the overlap accounting";

  MetricsRegistry registry;
  collect_network_metrics(registry, network);
  const double busy = registry.gauge("phy.busy_fraction").value();
  const double airtime = registry.gauge("phy.airtime_fraction").value();
  const double sim_seconds = network.simulator().now().seconds_f();
  EXPECT_GT(busy, 0.0);
  EXPECT_LE(busy, 1.0);
  EXPECT_DOUBLE_EQ(
      busy, network.medium().sense_busy_time(phy::Medium::kAllNodes).seconds_f() / sim_seconds);
  // Overlap is exactly the gap between summed airtime and occupancy.
  EXPECT_GT(airtime, busy);
}

// ---- merge (the sharded-run aggregation path) -------------------------------

TEST(HistogramMergeTest, FoldsCountsSumAndExtremes) {
  Histogram a{{1.0, 2.0, 4.0}};
  Histogram b{{1.0, 2.0, 4.0}};
  for (const double v : {0.5, 1.5, 3.0}) a.observe(v);
  for (const double v : {1.8, 100.0}) b.observe(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.sum(), 106.8);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  ASSERT_EQ(a.bucket_counts().size(), 4u);
  EXPECT_EQ(a.bucket_counts()[0], 1u);  // 0.5
  EXPECT_EQ(a.bucket_counts()[1], 2u);  // 1.5, 1.8
  EXPECT_EQ(a.bucket_counts()[2], 1u);  // 3.0
  EXPECT_EQ(a.bucket_counts()[3], 1u);  // 100 -> +inf
  // b is untouched.
  EXPECT_EQ(b.count(), 2u);
}

TEST(HistogramMergeTest, EmptyOperandsAreIdentity) {
  Histogram a{{1.0, 2.0}};
  Histogram empty{{1.0, 2.0}};
  a.observe(1.5);
  a.merge(empty);  // empty right operand: no change
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 1.5);

  Histogram c{{1.0, 2.0}};
  c.merge(a);  // empty left operand: adopts a's stats exactly
  EXPECT_EQ(c.count(), 1u);
  EXPECT_DOUBLE_EQ(c.min(), 1.5);
  EXPECT_DOUBLE_EQ(c.max(), 1.5);
  EXPECT_DOUBLE_EQ(c.sum(), 1.5);
}

TEST(RegistryMergeTest, CountersAddGaugesTakeTheirsHistogramsFold) {
  MetricsRegistry into;
  MetricsRegistry from;
  into.counter("c").inc(2);
  from.counter("c").inc(40);
  from.counter("only_theirs").inc(7);
  into.gauge("g").set(1.0);
  from.gauge("g").set(9.0);
  into.histogram("h", {1.0, 2.0}).observe(0.5);
  from.histogram("h", {1.0, 2.0}).observe(1.5);

  into.merge_from(from);
  EXPECT_EQ(into.counter("c").value(), 42u);
  EXPECT_EQ(into.counter("only_theirs").value(), 7u);  // created on the fly
  EXPECT_DOUBLE_EQ(into.gauge("g").value(), 9.0);      // last write wins
  EXPECT_EQ(into.histogram("h", {1.0, 2.0}).count(), 2u);
  // The source registry is read-only under merge.
  EXPECT_EQ(from.counter("c").value(), 40u);
}

TEST(RegistryMergeTest, SketchUnionIsDeterministicAndOrderInsensitiveOnExactSketches) {
  // Exact-mode sketches (few samples) merge as true unions, so folding the
  // same per-cell registries in any order must give identical quantiles —
  // the property the sharded metrics aggregation relies on.
  const auto fill = [](MetricsRegistry& reg, int lo, int hi) {
    QuantileSketch& s = reg.sketch("lat");
    for (int v = lo; v < hi; ++v) s.update(static_cast<double>(v));
  };
  MetricsRegistry cell0;
  MetricsRegistry cell1;
  fill(cell0, 0, 50);
  fill(cell1, 50, 100);

  MetricsRegistry ab;
  ab.merge_from(cell0);
  ab.merge_from(cell1);
  MetricsRegistry ba;
  ba.merge_from(cell1);
  ba.merge_from(cell0);

  QuantileSketch& sab = ab.sketch("lat");
  QuantileSketch& sba = ba.sketch("lat");
  EXPECT_EQ(sab.count(), 100u);
  EXPECT_EQ(sba.count(), 100u);
  EXPECT_DOUBLE_EQ(sab.sum(), sba.sum());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(sab.quantile(q), sba.quantile(q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(sab.min(), 0.0);
  EXPECT_DOUBLE_EQ(sab.max(), 99.0);
}

TEST(RegistryMergeTest, MergingPerCellRegistriesMatchesTheFlatRegistry) {
  // Simulate the sharded collect path: three cells each record into private
  // registries; merging them must equal one registry fed the same stream.
  MetricsRegistry flat;
  MetricsRegistry cells[3];
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 20; ++i) {
      const double v = c * 20 + i;
      cells[c].counter("n").inc();
      cells[c].histogram("h", {8.0, 32.0}).observe(v);
      flat.counter("n").inc();
      flat.histogram("h", {8.0, 32.0}).observe(v);
    }
  }
  MetricsRegistry merged;
  for (const auto& cell : cells) merged.merge_from(cell);
  EXPECT_EQ(merged.counter("n").value(), flat.counter("n").value());
  EXPECT_EQ(merged.histogram("h", {8.0, 32.0}).bucket_counts(),
            flat.histogram("h", {8.0, 32.0}).bucket_counts());
  EXPECT_DOUBLE_EQ(merged.histogram("h", {8.0, 32.0}).sum(),
                   flat.histogram("h", {8.0, 32.0}).sum());
}

}  // namespace
}  // namespace rtmac::obs
