// The in-run metrics stream: schema header, snapshot cadence, sim-time
// stamping (monotone t_ns, no wall-clock anywhere), the no-sink fast path,
// and — the invariant everything else rides on — that attaching a stream
// does not perturb simulation results.
#include "obs/stream.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace rtmac::obs {
namespace {

std::vector<std::map<std::string, std::string>> parse_lines(const std::string& text) {
  std::istringstream in{text};
  std::string line;
  std::vector<std::map<std::string, std::string>> out;
  while (std::getline(in, line)) {
    auto parsed = parse_flat_json(line);
    EXPECT_TRUE(parsed.has_value()) << line;
    if (parsed.has_value()) out.push_back(std::move(*parsed));
  }
  return out;
}

TEST(StreamSinkTest, HeaderCarriesSchemaAndVersion) {
  std::ostringstream out;
  write_stream_header(out);
  const auto header = parse_flat_json(out.str());
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->at("schema"), "\"rtmac.metrics-stream\"");
  EXPECT_EQ(header->at("version"), std::to_string(kMetricsStreamSchemaVersion));
}

TEST(StreamSinkTest, NullSinkDiscardsEverything) {
  NullStreamSink sink;
  sink.stream() << "a large payload that goes nowhere\n";
  sink.flush();
  EXPECT_TRUE(sink.stream().good());
}

TEST(StreamTest, CadenceEmitsEveryKthTick) {
  MetricsRegistry reg;
  reg.counter("c").inc();
  StringStreamSink sink;
  reg.stream_to(&sink, /*every=*/3, "\"label\":\"t\"");
  ASSERT_TRUE(reg.streaming());
  for (std::uint64_t k = 0; k < 10; ++k) {
    reg.stream_tick(k, static_cast<std::int64_t>(1000 * (k + 1)));
  }
  // Ticks 3, 6, 9 (1-based cadence counting) -> k = 2, 5, 8.
  const auto lines = parse_lines(sink.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].at("k"), "2");
  EXPECT_EQ(lines[1].at("k"), "5");
  EXPECT_EQ(lines[2].at("k"), "8");
  for (const auto& line : lines) {
    EXPECT_EQ(line.at("label"), "\"t\"");
    EXPECT_EQ(line.at("name"), "\"c\"");
  }
}

TEST(StreamTest, TickWithoutSinkIsANoOp) {
  MetricsRegistry reg;
  reg.counter("c").inc();
  EXPECT_FALSE(reg.streaming());
  reg.stream_tick(0, 0);  // must not crash or emit
  StringStreamSink sink;
  reg.stream_to(&sink, 1);
  reg.stream_to(nullptr);  // detach resets
  EXPECT_FALSE(reg.streaming());
  reg.stream_tick(1, 1);
  EXPECT_TRUE(sink.str().empty());
}

TEST(StreamTest, ZeroCadenceThrows) {
  MetricsRegistry reg;
  StringStreamSink sink;
  EXPECT_THROW(reg.stream_to(&sink, 0), std::invalid_argument);
}

// End-to-end through Network::run: every snapshot is stamped with the
// interval index and the sim-time interval end, strictly monotone — the
// property CI's stream validation asserts on real bench output.
TEST(StreamTest, NetworkStreamStampsAreMonotoneSimTime) {
  net::Network network{expfw::video_symmetric(0.55, 0.9, 91), expfw::dbdp_factory()};
  MetricsRegistry reg;
  StringStreamSink sink;
  network.attach_metrics(&reg);
  reg.stream_to(&sink, /*every=*/5);
  network.run(20);

  const auto lines = parse_lines(sink.str());
  ASSERT_FALSE(lines.empty());
  std::int64_t prev_t = -1;
  std::int64_t prev_k = -1;
  std::size_t snapshots = 0;
  for (const auto& line : lines) {
    const auto k = std::stoll(line.at("k"));
    const auto t = std::stoll(line.at("t_ns"));
    if (k != prev_k) {
      ++snapshots;
      EXPECT_GT(t, prev_t) << "sim-time stamps must be strictly monotone";
      prev_t = t;
      prev_k = k;
    } else {
      EXPECT_EQ(t, prev_t) << "one snapshot = one timestamp";
    }
  }
  // 20 intervals at cadence 5 -> snapshots at k = 4, 9, 14, 19.
  EXPECT_EQ(snapshots, 4u);
  EXPECT_EQ(prev_k, 19);
}

// Two identically-seeded networks, streaming and not: bit-identical
// results. The stream is read-only observability like the registry itself.
TEST(StreamTest, StreamingDoesNotPerturbResults) {
  const auto make = [] {
    return net::Network{expfw::video_symmetric(0.55, 0.9, 92), expfw::dbdp_factory()};
  };
  net::Network plain = make();
  plain.run(30);

  net::Network streamed = make();
  MetricsRegistry reg;
  StringStreamSink sink;
  streamed.attach_metrics(&reg);
  reg.stream_to(&sink, 2);
  streamed.run(30);

  EXPECT_EQ(plain.simulator().events_executed(), streamed.simulator().events_executed());
  EXPECT_DOUBLE_EQ(plain.total_deficiency(), streamed.total_deficiency());
  EXPECT_FALSE(sink.str().empty());
}

}  // namespace
}  // namespace rtmac::obs
