// The trace exporters' contract: TraceKind names round-trip through the
// string table (over every kind — this is what keeps exported traces
// parseable), the JSONL export is schema-versioned and line-parseable, and
// the Chrome trace-event export is structurally sound (matched B/E depth,
// named tracks, metadata block) so Perfetto always loads it.
#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "obs/json.hpp"
#include "traffic/arrival_process.hpp"

namespace rtmac::obs {
namespace {

using sim::TraceKind;
using sim::Tracer;

TEST(TraceKindTest, ToStringRoundTripsEveryKind) {
  for (std::size_t k = 0; k < sim::kTraceKindCount; ++k) {
    const auto kind = static_cast<TraceKind>(k);
    const auto name = sim::to_string(kind);
    EXPECT_FALSE(name.empty());
    const auto parsed = sim::trace_kind_from_string(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind) << name;
  }
  EXPECT_FALSE(sim::trace_kind_from_string("no-such-kind").has_value());
  EXPECT_FALSE(sim::trace_kind_from_string("").has_value());
}

TEST(TraceJsonlTest, HeaderAndEventsParse) {
  Tracer tracer{8};
  tracer.record(TimePoint::from_ns(1000), TraceKind::kIntervalStart, sim::kNoLink, 0);
  tracer.record(TimePoint::from_ns(2000), TraceKind::kTxStart, 3, 330000, 0);
  tracer.record(TimePoint::from_ns(5000), TraceKind::kTxEnd, 3, 2, 0);

  std::ostringstream out;
  write_trace_jsonl(out, tracer);
  std::istringstream in{out.str()};
  std::string line;

  ASSERT_TRUE(std::getline(in, line));
  auto header = parse_flat_json(line);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->at("schema"), "\"rtmac.trace\"");
  EXPECT_EQ(header->at("version"), std::to_string(sim::kTraceSchemaVersion));
  EXPECT_EQ(header->at("total"), "3");
  EXPECT_EQ(header->at("dropped"), "0");

  ASSERT_TRUE(std::getline(in, line));
  auto ev = parse_flat_json(line);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->at("t_ns"), "1000");
  EXPECT_EQ(ev->at("kind"), "\"interval-start\"");
  // Events with no link omit the field entirely.
  EXPECT_EQ(ev->count("link"), 0u);

  ASSERT_TRUE(std::getline(in, line));
  ev = parse_flat_json(line);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->at("kind"), "\"tx-start\"");
  EXPECT_EQ(ev->at("link"), "3");
  EXPECT_EQ(ev->at("a"), "330000");

  // Exported kind names parse back to the enum.
  ASSERT_TRUE(std::getline(in, line));
  ev = parse_flat_json(line);
  ASSERT_TRUE(ev.has_value());
  const auto unquoted = json_unquote(ev->at("kind"));
  ASSERT_TRUE(unquoted.has_value());
  EXPECT_EQ(sim::trace_kind_from_string(*unquoted), TraceKind::kTxEnd);
  EXPECT_FALSE(std::getline(in, line));
}

TEST(TraceJsonlTest, DroppedCountSurvivesRingBound) {
  Tracer tracer{2};
  for (int i = 0; i < 5; ++i) {
    tracer.record(TimePoint::from_ns(i), TraceKind::kBackoffArmed, 0, i);
  }
  std::ostringstream out;
  write_trace_jsonl(out, tracer);
  std::istringstream in{out.str()};
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto header = parse_flat_json(line);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->at("total"), "5");
  EXPECT_EQ(header->at("dropped"), "3");
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(ChromeTraceTest, BalancedSlicesAndNamedTracks) {
  Tracer tracer{0};
  tracer.record(TimePoint::from_ns(0), TraceKind::kIntervalStart, sim::kNoLink, 0);
  tracer.record(TimePoint::from_ns(1000), TraceKind::kTxStart, 2, 330000, 0);
  tracer.record(TimePoint::from_ns(331000), TraceKind::kTxEnd, 2, 0, 0);
  tracer.record(TimePoint::from_ns(400000), TraceKind::kSwapUp, 2, 3, 2);
  tracer.record(TimePoint::from_ns(500000), TraceKind::kIntervalEnd, sim::kNoLink, 0);

  std::ostringstream out;
  write_chrome_trace(out, tracer);
  const std::string json = out.str();

  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Metadata: process + per-track names, schema version in otherData.
  EXPECT_NE(json.find("\"name\":\"rtmac\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"intervals\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"link 2\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"rtmac.trace\""), std::string::npos);
  // Every begin has a matching end.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), count_occurrences(json, "\"ph\":\"E\""));
  EXPECT_NE(json.find("\"outcome\":\"delivered\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"swap-up\""), std::string::npos);
}

TEST(ChromeTraceTest, TruncatedCaptureStillBalances) {
  // A ring-bounded capture can retain an unmatched tx-end (open at the
  // front) and an unmatched tx-start (open at the back); the exporter must
  // still emit balanced B/E pairs.
  Tracer tracer{0};
  tracer.record(TimePoint::from_ns(100), TraceKind::kTxEnd, 1, 0, 0);    // no begin
  tracer.record(TimePoint::from_ns(200), TraceKind::kTxStart, 1, 500, 0);  // no end
  std::ostringstream out;
  write_chrome_trace(out, tracer);
  const std::string json = out.str();
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), count_occurrences(json, "\"ph\":\"E\""));
  EXPECT_NE(json.find("(truncated)"), std::string::npos);
}

TEST(ChromeTraceTest, FullRunExportsNonTrivialTimeline) {
  auto cfg = net::symmetric_network(3, Duration::milliseconds(20),
                                    phy::PhyParams::video_80211a(), 1.0,
                                    traffic::ConstantArrivals{1}, 0.9, 91);
  net::Network net{std::move(cfg), expfw::dbdp_factory()};
  Tracer tracer{0};
  net.attach_tracer(&tracer);
  net.run(5);

  std::ostringstream out;
  write_chrome_trace(out, tracer);
  const std::string json = out.str();
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), count_occurrences(json, "\"ph\":\"E\""));
  // 5 intervals, 3 links, 1 packet each on a perfect channel.
  EXPECT_EQ(count_occurrences(json, "\"name\":\"interval\""), 10u);  // 5 B + 5 E
  EXPECT_GE(count_occurrences(json, "\"name\":\"tx\""), 2u * 15u);
}

}  // namespace
}  // namespace rtmac::obs
