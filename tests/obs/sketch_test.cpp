// The quantile-sketch contract: exact mode below the threshold, the
// rank-error guarantee on a 10^7-sample stream (property-tested against the
// exact sorted reference), merge-order-invariant byte-identical exports,
// seed-determinism, scalar preservation, and the zero-steady-state-
// allocation update path (interposed global new/delete, the same gate the
// event engine's hot path uses).
#include "obs/sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <sstream>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

// ---- allocation counting ----------------------------------------------------
// Interposed global new/delete: counts every heap allocation made by this
// binary. Tests read the counter around a measurement window; gtest's own
// allocations outside the window are irrelevant.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
}  // namespace

// gcc -O2 cannot see that the replaced operator new forwards to malloc, so
// inlined delete sites trip -Wmismatched-new-delete; the pairing is correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) { return counted_alloc(size); }
void* operator new[](std::size_t size, std::align_val_t) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace rtmac::obs {
namespace {

TEST(SketchOptionsTest, InvalidConfigurationsThrow) {
  EXPECT_THROW(QuantileSketch({/*k=*/3}), std::invalid_argument);
  EXPECT_THROW(QuantileSketch({/*k=*/7}), std::invalid_argument);
  EXPECT_THROW(QuantileSketch({/*k=*/8, /*exact_threshold=*/3}), std::invalid_argument);
  EXPECT_THROW(QuantileSketch({/*k=*/8, /*exact_threshold=*/9}), std::invalid_argument);
}

TEST(SketchTest, EmptySketchIsAllNaN) {
  const QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.quantile(0.5)));
  EXPECT_TRUE(s.exact());
}

TEST(SketchTest, NanQuantileRequestReturnsNan) {
  QuantileSketch s;
  s.update(1.0);
  EXPECT_TRUE(std::isnan(s.quantile(std::nan(""))));
}

// Below exact_threshold no compaction has happened: every quantile is the
// exact inverted-CDF value of the sample multiset.
TEST(SketchTest, ExactModeMatchesInvertedCdf) {
  QuantileSketch s{{/*k=*/16, /*exact_threshold=*/64}};
  std::vector<double> data;
  Rng rng{99};
  for (int i = 0; i < 63; ++i) {
    const double v = rng.next_double();
    data.push_back(v);
    s.update(v);
  }
  ASSERT_TRUE(s.exact());
  std::sort(data.begin(), data.end());
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const auto n = static_cast<double>(data.size());
    const auto rank = q == 0.0 ? std::size_t{1}
                               : static_cast<std::size_t>(std::ceil(q * n));
    EXPECT_DOUBLE_EQ(s.quantile(q), data[std::min(rank, data.size()) - 1]) << "q=" << q;
  }
  // q clamping mirrors Histogram::quantile.
  EXPECT_DOUBLE_EQ(s.quantile(-1.0), s.min());
  EXPECT_DOUBLE_EQ(s.quantile(2.0), s.max());
}

TEST(SketchTest, CompactionClearsExactFlagAndPreservesScalars) {
  QuantileSketch s{{/*k=*/8, /*exact_threshold=*/8}};
  double sum = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double v = static_cast<double>((i * 37) % 101);
    s.update(v);
    sum += v;
  }
  EXPECT_FALSE(s.exact());
  EXPECT_EQ(s.count(), 1000u);
  EXPECT_DOUBLE_EQ(s.sum(), sum);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), sum / 1000.0);
  // Memory actually stays bounded far below the input count.
  EXPECT_LT(s.retained(), 200u);
}

// The headline property: on a 10^7-sample stream the estimate for every
// tested q lands within options().rank_error() of q in rank space, measured
// against the fully-sorted exact reference. Uses a heavy-tailed mixture so
// the guarantee is exercised away from the uniform easy case.
TEST(SketchTest, RankErrorBoundOnTenMillionSamples) {
  constexpr std::size_t kN = 10'000'000;
  const SketchOptions opts{};  // default k = 256
  QuantileSketch s{opts};
  std::vector<double> data;
  data.reserve(kN);
  Rng rng{20260808};
  for (std::size_t i = 0; i < kN; ++i) {
    // Mixture: 90% uniform [0,1), 10% exponential-ish tail via -3*log(u).
    const double u = rng.next_double();
    const double v = (i % 10 == 9) ? -3.0 * std::log(u + 1e-18) : u;
    data.push_back(v);
    s.update(v);
  }
  ASSERT_EQ(s.count(), kN);
  std::sort(data.begin(), data.end());

  const double bound = opts.rank_error();
  for (const double q : {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}) {
    const double est = s.quantile(q);
    // Rank of the estimate in the exact reference, as the fraction of
    // samples <= est; a range because of duplicates.
    const auto lo = std::lower_bound(data.begin(), data.end(), est) - data.begin();
    const auto hi = std::upper_bound(data.begin(), data.end(), est) - data.begin();
    const double lo_frac = static_cast<double>(lo) / static_cast<double>(kN);
    const double hi_frac = static_cast<double>(hi) / static_cast<double>(kN);
    EXPECT_LE(lo_frac - bound, q) << "q=" << q << " est=" << est;
    EXPECT_GE(hi_frac + bound, q) << "q=" << q << " est=" << est;
  }
}

TEST(SketchTest, SameSeedSameInputIsBitIdentical) {
  const SketchOptions opts{/*k=*/32, /*exact_threshold=*/32, /*seed=*/1234};
  QuantileSketch a{opts};
  QuantileSketch b{opts};
  Rng rng{5};
  for (int i = 0; i < 100'000; ++i) {
    const double v = rng.next_double();
    a.update(v);
    b.update(v);
  }
  EXPECT_EQ(a.retained(), b.retained());
  for (const double q : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
  }
}

// Fingerprint every exported statistic through the deterministic JSON
// number formatter: byte-equality here is exactly what "byte-identical
// JSONL exports" means downstream.
std::string export_fingerprint(const QuantileSketch& s) {
  std::ostringstream out;
  out << json_number(s.count()) << ',' << json_number(s.sum()) << ','
      << json_number(s.min()) << ',' << json_number(s.max()) << ','
      << json_number(s.mean());
  for (const double q : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    out << ',' << json_number(s.quantile(q));
  }
  return std::move(out).str();
}

TEST(SketchTest, MergeIsOrderAndGroupingInvariant) {
  const auto make_part = [](std::uint64_t seed, int n, double scale) {
    QuantileSketch s{{/*k=*/32, /*exact_threshold=*/32, seed}};
    Rng rng{seed};
    for (int i = 0; i < n; ++i) s.update(scale * rng.next_double());
    return s;
  };
  const QuantileSketch a = make_part(1, 5000, 1.0);
  const QuantileSketch b = make_part(2, 3000, 10.0);
  const QuantileSketch c = make_part(3, 7000, 0.1);
  const QuantileSketch d = make_part(4, 11, 100.0);  // exact-mode input

  QuantileSketch fwd = a;
  fwd.merge(b);
  fwd.merge(c);
  fwd.merge(d);

  QuantileSketch rev = d;
  rev.merge(c);
  rev.merge(b);
  rev.merge(a);

  QuantileSketch nested = a;
  QuantileSketch right = c;
  right.merge(d);
  nested.merge(b);
  nested.merge(right);

  const std::string want = export_fingerprint(fwd);
  EXPECT_EQ(export_fingerprint(rev), want);
  EXPECT_EQ(export_fingerprint(nested), want);
  EXPECT_EQ(fwd.count(), 15011u);
  EXPECT_FALSE(fwd.exact());
}

TEST(SketchTest, MergingExactSketchesStaysExact) {
  QuantileSketch a{{/*k=*/16, /*exact_threshold=*/64}};
  QuantileSketch b{{/*k=*/16, /*exact_threshold=*/64}};
  for (int i = 0; i < 20; ++i) a.update(static_cast<double>(i));
  for (int i = 20; i < 40; ++i) b.update(static_cast<double>(i));
  a.merge(b);
  EXPECT_TRUE(a.exact());
  EXPECT_EQ(a.count(), 40u);
  // Exact union: the median of 0..39 at ceil-rank 20 is 19.
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 19.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 39.0);
}

// The whole point of pre-sized compactors: once constructed, update()
// never touches the allocator, however many compaction cascades run.
TEST(SketchTest, UpdatePathIsAllocationFree) {
  QuantileSketch s{{/*k=*/64, /*exact_threshold=*/128}};
  Rng rng{7};
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1'000'000; ++i) s.update(rng.next_double());
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(s.count(), 1'000'000u);
}

// Registry integration: get-or-create handles, per-name seed separation,
// and the v2 "sketch" JSONL record.
TEST(SketchTest, RegistryExportRoundTrips) {
  MetricsRegistry reg;
  QuantileSketch& s1 = reg.sketch("lat.us");
  QuantileSketch& s2 = reg.sketch("lat.us");
  EXPECT_EQ(&s1, &s2);
  // Distinct names derive distinct coin seeds from the same base.
  EXPECT_NE(reg.sketch("other").options().seed, s1.options().seed);

  for (int i = 1; i <= 100; ++i) s1.update(static_cast<double>(i));
  std::ostringstream out;
  reg.write_jsonl(out, "");
  std::istringstream in{std::move(out).str()};
  std::string line;
  bool found = false;
  while (std::getline(in, line)) {
    auto parsed = parse_flat_json(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    if (parsed->at("name") != "\"lat.us\"") continue;
    found = true;
    EXPECT_EQ(parsed->at("type"), "\"sketch\"");
    EXPECT_EQ(parsed->at("count"), "100");
    EXPECT_EQ(parsed->at("sum"), "5050");
    EXPECT_EQ(parsed->at("min"), "1");
    EXPECT_EQ(parsed->at("max"), "100");
    EXPECT_EQ(parsed->at("p50"), "50");
    EXPECT_EQ(parsed->at("exact"), "1");
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace rtmac::obs
