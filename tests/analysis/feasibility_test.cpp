#include "analysis/feasibility.hpp"

#include <gtest/gtest.h>

#include "expfw/scenarios.hpp"
#include "net/network_config.hpp"
#include "traffic/arrival_process.hpp"

namespace rtmac::analysis {
namespace {

net::NetworkConfig tiny_config(double lambda) {
  // 2 links, Bernoulli arrivals, control profile (16 slots / 2 ms).
  return net::symmetric_network(2, Duration::milliseconds(2),
                                phy::PhyParams::control_80211a(), 0.9,
                                traffic::BernoulliArrivals{lambda}, 0.95, 7);
}

TEST(FeasibilityTest, LightLoadAchieves) {
  EXPECT_TRUE(achieves(tiny_config(0.3), expfw::ldf_factory(), 500, 0.02));
}

TEST(FeasibilityTest, ImpossibleLoadFails) {
  // 2 links each demanding ~0.95 deliveries/interval at p=0.9 is fine for
  // 16 slots; to build an infeasible case shrink the interval to 1 airtime:
  auto cfg = net::symmetric_network(2, Duration::microseconds(130),
                                    phy::PhyParams::control_80211a(), 0.9,
                                    traffic::BernoulliArrivals{1.0}, 0.95, 7);
  // Only 1 transmission fits per interval but both links always have a
  // packet: at most one of the two requirements can be met.
  EXPECT_FALSE(achieves(std::move(cfg), expfw::ldf_factory(), 500, 0.02));
}

TEST(FeasibilityTest, BisectionFindsBoundaryMonotonically) {
  const ConfigForLoad config_for = [](double lambda) { return tiny_config(lambda); };
  ProbeParams params;
  params.intervals = 400;
  params.bisection_steps = 8;
  params.lo = 0.1;
  params.hi = 1.0;
  const double knee = max_supported_load(config_for, expfw::ldf_factory(), params);
  // 2 links, p=0.9, 16 slots: even lambda = 1.0 is easily feasible, so the
  // probe should push close to the upper bracket.
  EXPECT_GT(knee, 0.95);
}

TEST(FeasibilityTest, BisectionRespectsBrackets) {
  const ConfigForLoad config_for = [](double lambda) { return tiny_config(lambda); };
  ProbeParams params;
  params.intervals = 200;
  params.bisection_steps = 4;
  params.lo = 0.2;
  params.hi = 0.4;
  const double knee = max_supported_load(config_for, expfw::ldf_factory(), params);
  EXPECT_GE(knee, 0.2);
  EXPECT_LE(knee, 0.4);
}

}  // namespace
}  // namespace rtmac::analysis
