#include "analysis/region.hpp"

#include <gtest/gtest.h>

#include "analysis/feasibility.hpp"
#include "expfw/scenarios.hpp"
#include "net/network_config.hpp"
#include "traffic/arrival_process.hpp"

namespace rtmac::analysis {
namespace {

TwoLinkRegion simple_region() {
  // p = 1, one packet each, 1 slot: outcomes (1,0) and (0,1); the region is
  // the probability simplex.
  return two_link_region({1.0, 1.0}, {{0.0, 1.0}, {0.0, 1.0}}, 1);
}

TEST(TwoLinkRegionTest, SimplexExtremePoints) {
  const auto region = simple_region();
  EXPECT_NEAR(region.link0_first.q0, 1.0, 1e-12);
  EXPECT_NEAR(region.link0_first.q1, 0.0, 1e-12);
  EXPECT_NEAR(region.link1_first.q0, 0.0, 1e-12);
  EXPECT_NEAR(region.link1_first.q1, 1.0, 1e-12);
}

TEST(TwoLinkRegionTest, SimplexMembership) {
  const auto region = simple_region();
  EXPECT_TRUE(region.contains({0.5, 0.5}));
  EXPECT_TRUE(region.contains({0.3, 0.69}));
  EXPECT_TRUE(region.contains({1.0, 0.0}));
  EXPECT_FALSE(region.contains({0.6, 0.6}));
  EXPECT_FALSE(region.contains({1.01, 0.0}));
  EXPECT_TRUE(region.contains({0.0, 0.0}));
}

TEST(TwoLinkRegionTest, BoundaryScaleOnSimplex) {
  const auto region = simple_region();
  EXPECT_NEAR(region.boundary_scale({0.5, 0.5}), 1.0, 1e-9);
  EXPECT_NEAR(region.boundary_scale({0.25, 0.25}), 2.0, 1e-9);
  EXPECT_NEAR(region.boundary_scale({1.0, 0.0}), 1.0, 1e-9);
  EXPECT_NEAR(region.boundary_scale({0.0, 2.0}), 0.5, 1e-9);
}

TEST(TwoLinkRegionTest, AbundantSlotsDecoupleLinks) {
  // 8 slots, 1 packet each, p = 1: both orderings deliver (1,1); the region
  // is the unit square.
  const auto region = two_link_region({1.0, 1.0}, {{0.0, 1.0}, {0.0, 1.0}}, 8);
  EXPECT_TRUE(region.contains({1.0, 1.0}));
  EXPECT_FALSE(region.contains({1.0, 1.1}));
}

TEST(TwoLinkRegionTest, UnreliableAsymmetricFrontier) {
  // Heterogeneous p: the frontier extreme points reflect who went first.
  const auto region = two_link_region({0.5, 0.9}, {{0.0, 1.0}, {0.0, 1.0}}, 2);
  // link0 first: E[S0] = 1 - 0.25 = 0.75; link1 gets the leftover slot
  // (prob 0.5 that link0 succeeded on try one) -> E[S1] = 0.5 * 0.9 = 0.45.
  EXPECT_NEAR(region.link0_first.q0, 0.75, 1e-12);
  EXPECT_NEAR(region.link0_first.q1, 0.45, 1e-12);
  // link1 first: E[S1] = 1 - 0.01 = 0.99; link0 leftover: 0.9 * 0.5 = 0.45.
  EXPECT_NEAR(region.link1_first.q1, 0.99, 1e-12);
  EXPECT_NEAR(region.link1_first.q0, 0.45, 1e-12);
}

TEST(TwoLinkRegionTest, EmpiricalLdfBoundaryMatchesExactRegion) {
  // The exact frontier must match the empirically probed LDF boundary along
  // the diagonal ray: feasibility optimality made measurable.
  const int slots = 4;
  const auto region = two_link_region({0.8, 0.8}, {{0.0, 1.0}, {0.0, 1.0}}, slots);
  const double exact_scale = region.boundary_scale({1.0, 1.0});  // q = s*(1,1)

  // Empirical: rho sweeps the diagonal since lambda = 1 for both links.
  const ConfigForLoad config_for = [](double rho) {
    return net::symmetric_network(2, Duration::microseconds(520),
                                  phy::PhyParams::control_80211a(), 0.8,
                                  traffic::ConstantArrivals{1}, rho, 17);
  };
  // 520us / 120us airtime = 4 slots, matching `slots`.
  ProbeParams params;
  params.intervals = 3000;
  params.bisection_steps = 10;
  params.deficiency_threshold = 0.01;
  params.lo = 0.5;
  params.hi = 1.0;
  const double empirical = max_supported_load(config_for, expfw::ldf_factory(), params);
  EXPECT_NEAR(empirical, exact_scale, 0.03);
}

}  // namespace
}  // namespace rtmac::analysis
