#include "analysis/priority_evaluator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/permutation.hpp"
#include "util/rng.hpp"

namespace rtmac::analysis {
namespace {

TEST(PriorityEvaluatorTest, SingleLinkReliableChannel) {
  PriorityEvaluator eval{{1.0}, 5};
  const auto r = eval.evaluate_fixed({0}, {3});
  EXPECT_NEAR(r.expected_deliveries[0], 3.0, 1e-12);
}

TEST(PriorityEvaluatorTest, SingleLinkSlotsBound) {
  PriorityEvaluator eval{{1.0}, 2};
  const auto r = eval.evaluate_fixed({0}, {5});
  EXPECT_NEAR(r.expected_deliveries[0], 2.0, 1e-12);
}

TEST(PriorityEvaluatorTest, SingleLinkGeometricRetry) {
  // 1 packet, p = 0.5, 3 slots: P(deliver) = 1 - 0.5^3.
  PriorityEvaluator eval{{0.5}, 3};
  const auto r = eval.evaluate_fixed({0}, {1});
  EXPECT_NEAR(r.expected_deliveries[0], 1.0 - 0.125, 1e-12);
}

TEST(PriorityEvaluatorTest, SingleLinkBinomialTruncation) {
  // 2 packets, p = 0.5, 2 slots: E[S] = E[Binomial(2, .5)] = 1.
  PriorityEvaluator eval{{0.5}, 2};
  const auto r = eval.evaluate_fixed({0}, {2});
  EXPECT_NEAR(r.expected_deliveries[0], 1.0, 1e-12);
}

TEST(PriorityEvaluatorTest, TwoLinksReliableSequential) {
  PriorityEvaluator eval{{1.0, 1.0}, 3};
  const auto r = eval.evaluate_fixed({0, 1}, {2, 2});
  EXPECT_NEAR(r.expected_deliveries[0], 2.0, 1e-12);
  EXPECT_NEAR(r.expected_deliveries[1], 1.0, 1e-12);  // one slot left
}

TEST(PriorityEvaluatorTest, OrderingMatters) {
  PriorityEvaluator eval{{1.0, 1.0}, 1};
  const auto forward = eval.evaluate_fixed({0, 1}, {1, 1});
  const auto backward = eval.evaluate_fixed({1, 0}, {1, 1});
  EXPECT_NEAR(forward.expected_deliveries[0], 1.0, 1e-12);
  EXPECT_NEAR(forward.expected_deliveries[1], 0.0, 1e-12);
  EXPECT_NEAR(backward.expected_deliveries[1], 1.0, 1e-12);
  EXPECT_NEAR(backward.expected_deliveries[0], 0.0, 1e-12);
}

TEST(PriorityEvaluatorTest, SecondLinkSeesLeftoverDistribution) {
  // Link 0: 1 packet at p=0.5 with 2 slots. It uses 1 slot w.p. .5 (success
  // first try), else 2 slots. Link 1 (p=1, 1 packet) delivers iff a slot is
  // left: probability 0.5.
  PriorityEvaluator eval{{0.5, 1.0}, 2};
  const auto r = eval.evaluate_fixed({0, 1}, {1, 1});
  EXPECT_NEAR(r.expected_deliveries[0], 0.75, 1e-12);  // 1 - 0.5^2
  EXPECT_NEAR(r.expected_deliveries[1], 0.5, 1e-12);
}

TEST(PriorityEvaluatorTest, IndependentArrivalsAverageOverPmf) {
  // Link arrivals Bernoulli(0.5): E[S] = 0.5 * P(deliver 1 pkt in 2 slots).
  PriorityEvaluator eval{{0.5}, 2};
  const auto r = eval.evaluate({0}, {{0.5, 0.5}});
  EXPECT_NEAR(r.expected_deliveries[0], 0.5 * 0.75, 1e-12);
}

TEST(PriorityEvaluatorTest, TotalsAndObjective) {
  PriorityEvaluator eval{{1.0, 1.0}, 2};
  const auto r = eval.evaluate_fixed({0, 1}, {1, 1});
  EXPECT_NEAR(r.total(), 2.0, 1e-12);
  EXPECT_NEAR(PriorityEvaluator::objective(r, {2.0, 3.0}), 5.0, 1e-12);
}

TEST(PriorityEvaluatorTest, EldfOrderingSortsByWeightTimesP) {
  PriorityEvaluator eval{{0.5, 0.9, 0.7}, 10};
  // weights * p: 0.5*2=1.0, 0.9*1=0.9, 0.7*2=1.4 -> order {2, 0, 1}.
  EXPECT_EQ(eval.eldf_ordering({2.0, 1.0, 2.0}), (std::vector<LinkId>{2, 0, 1}));
}

TEST(PriorityEvaluatorTest, MatchesMonteCarlo) {
  // Cross-validate the exact DP against brute-force simulation of the same
  // serve-in-order process.
  const ProbabilityVector p{0.6, 0.8, 0.4};
  const std::vector<int> arrivals{2, 1, 3};
  const int slots = 6;
  PriorityEvaluator eval{p, slots};
  const auto exact = eval.evaluate_fixed({2, 0, 1}, arrivals);

  Rng rng{2718};
  std::vector<double> mc(3, 0.0);
  constexpr int kTrials = 200000;
  for (int trial = 0; trial < kTrials; ++trial) {
    int remaining = slots;
    std::vector<int> buf = arrivals;
    for (LinkId link : {2u, 0u, 1u}) {
      while (buf[link] > 0 && remaining > 0) {
        --remaining;
        if (rng.bernoulli(p[link])) {
          --buf[link];
          mc[link] += 1.0;
        }
      }
    }
  }
  for (auto& v : mc) v /= kTrials;
  for (LinkId n = 0; n < 3; ++n) {
    EXPECT_NEAR(exact.expected_deliveries[n], mc[n], 0.01) << "link " << n;
  }
}

TEST(PriorityEvaluatorTest, Lemma3EldfMaximizesObjectiveExhaustively) {
  // Lemma 3: the ELDF ordering maximizes sum w_n E[S_n] over ALL orderings.
  // Exhaustive check for N = 4 over several random weight/arrival draws.
  Rng rng{99};
  for (int trial = 0; trial < 10; ++trial) {
    ProbabilityVector p(4);
    std::vector<double> w(4);
    std::vector<std::vector<double>> pmfs(4);
    for (int n = 0; n < 4; ++n) {
      p[static_cast<std::size_t>(n)] = rng.uniform_real(0.2, 1.0);
      w[static_cast<std::size_t>(n)] = rng.uniform_real(0.0, 3.0);
      // Bernoulli-ish arrival pmf over {0,1,2}.
      const double a0 = rng.uniform_real(0.0, 1.0);
      const double a1 = rng.uniform_real(0.0, 1.0 - a0);
      pmfs[static_cast<std::size_t>(n)] = {a0, a1, 1.0 - a0 - a1};
    }
    PriorityEvaluator eval{p, 5};
    const double eldf_obj =
        PriorityEvaluator::objective(eval.evaluate(eval.eldf_ordering(w), pmfs), w);
    for (const auto& perm : core::Permutation::all(4)) {
      const double obj = PriorityEvaluator::objective(eval.evaluate(perm.ordering(), pmfs), w);
      EXPECT_LE(obj, eldf_obj + 1e-9)
          << "ordering " << perm.to_string() << " beats ELDF in trial " << trial;
    }
  }
}

TEST(PriorityEvaluatorTest, ZeroSlotsDeliversNothing) {
  PriorityEvaluator eval{{0.9, 0.9}, 0};
  const auto r = eval.evaluate_fixed({0, 1}, {2, 2});
  EXPECT_DOUBLE_EQ(r.expected_deliveries[0], 0.0);
  EXPECT_DOUBLE_EQ(r.expected_deliveries[1], 0.0);
}

}  // namespace
}  // namespace rtmac::analysis
