#include "analysis/interval_mdp.hpp"

#include <gtest/gtest.h>

#include "analysis/priority_evaluator.hpp"
#include "core/permutation.hpp"
#include "util/rng.hpp"

namespace rtmac::analysis {
namespace {

TEST(IntervalMdpTest, SingleLinkSinglePacket) {
  // 1 packet, p, T slots, weight w: optimum = w * (1 - (1-p)^T).
  const IntervalMdp mdp{{0.5}, {2.0}, 3};
  EXPECT_NEAR(mdp.optimal_value({1}), 2.0 * (1.0 - 0.125), 1e-12);
}

TEST(IntervalMdpTest, EmptyBuffersAreWorthless) {
  const IntervalMdp mdp{{0.9, 0.9}, {1.0, 1.0}, 5};
  EXPECT_DOUBLE_EQ(mdp.optimal_value({0, 0}), 0.0);
  EXPECT_EQ(mdp.optimal_action({0, 0}, 5), -1);
}

TEST(IntervalMdpTest, ZeroSlotsWorthless) {
  const IntervalMdp mdp{{0.9}, {1.0}, 0};
  EXPECT_DOUBLE_EQ(mdp.optimal_value({3}), 0.0);
}

TEST(IntervalMdpTest, OneSlotPicksLargestWeightTimesP) {
  // One slot, both links loaded: value = max(w0 p0, w1 p1).
  const IntervalMdp mdp{{0.5, 0.9}, {3.0, 1.2}, 1};
  EXPECT_NEAR(mdp.optimal_value({1, 1}), 1.5, 1e-12);
  EXPECT_EQ(mdp.optimal_action({1, 1}, 1), 0);
}

TEST(IntervalMdpTest, ValueMonotoneInSlotsAndBuffers) {
  const IntervalMdp mdp3{{0.6, 0.8}, {1.0, 2.0}, 3};
  const IntervalMdp mdp6{{0.6, 0.8}, {1.0, 2.0}, 6};
  EXPECT_LE(mdp3.optimal_value({1, 1}), mdp6.optimal_value({1, 1}));
  EXPECT_LE(mdp6.optimal_value({1, 1}), mdp6.optimal_value({2, 1}));
  EXPECT_LE(mdp6.optimal_value({2, 1}), mdp6.optimal_value({2, 2}));
}

TEST(IntervalMdpTest, OptimalActionIsEldfArgmax) {
  // Lemma 3's mechanism: the optimal action is the loaded link maximizing
  // w_n * p_n, regardless of the other buffers.
  const IntervalMdp mdp{{0.7, 0.9, 0.5}, {2.0, 1.0, 3.0}, 8};
  // w*p = 1.4, 0.9, 1.5 -> link 2 first.
  EXPECT_EQ(mdp.optimal_action({2, 2, 2}, 8), 2);
  // With link 2 drained: link 0 (1.4) next.
  EXPECT_EQ(mdp.optimal_action({2, 2, 0}, 6), 0);
  EXPECT_EQ(mdp.optimal_action({0, 2, 0}, 3), 1);
}

TEST(IntervalMdpTest, Lemma3AdaptiveOptimumEqualsEldfPriorityValue) {
  // THE theorem check: the adaptive optimum over all policies equals the
  // value of the non-adaptive ELDF priority ordering, for random instances.
  Rng rng{314159};
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 3;
    ProbabilityVector p(n);
    std::vector<double> w(n);
    std::vector<int> buffers(n);
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = rng.uniform_real(0.2, 1.0);
      w[i] = rng.uniform_real(0.1, 3.0);
      buffers[i] = static_cast<int>(rng.uniform_int(0, 3));
    }
    const int slots = static_cast<int>(rng.uniform_int(1, 8));

    const IntervalMdp mdp{p, w, slots};
    const double adaptive_opt = mdp.optimal_value(buffers);

    PriorityEvaluator eval{p, slots};
    const double eldf_value =
        PriorityEvaluator::objective(eval.evaluate_fixed(eval.eldf_ordering(w), buffers), w);

    EXPECT_NEAR(adaptive_opt, eldf_value, 1e-9)
        << "trial " << trial << ": adaptive optimum should be attained by ELDF";
  }
}

TEST(IntervalMdpTest, AdaptiveOptimumDominatesEveryFixedOrdering) {
  Rng rng{2718};
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 4;
    ProbabilityVector p(n);
    std::vector<double> w(n);
    std::vector<int> buffers(n);
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = rng.uniform_real(0.3, 1.0);
      w[i] = rng.uniform_real(0.1, 2.0);
      buffers[i] = static_cast<int>(rng.uniform_int(0, 2));
    }
    const int slots = 5;
    const IntervalMdp mdp{p, w, slots};
    const double adaptive_opt = mdp.optimal_value(buffers);
    PriorityEvaluator eval{p, slots};
    for (const auto& perm : core::Permutation::all(n)) {
      const double v =
          PriorityEvaluator::objective(eval.evaluate_fixed(perm.ordering(), buffers), w);
      EXPECT_LE(v, adaptive_opt + 1e-9) << perm.to_string();
    }
  }
}

TEST(IntervalMdpTest, PerfectChannelCountsGreedily) {
  // p = 1 everywhere: optimum = serve in weight order until slots run out.
  const IntervalMdp mdp{{1.0, 1.0}, {2.0, 1.0}, 3};
  // Buffers (2, 2): serve link 0 twice (2+2) then link 1 once (1) = 5.
  EXPECT_NEAR(mdp.optimal_value({2, 2}), 5.0, 1e-12);
}

}  // namespace
}  // namespace rtmac::analysis
