#include "analysis/priority_chain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/math.hpp"
#include "util/rng.hpp"

namespace rtmac::analysis {
namespace {

TEST(PriorityChainTest, TransitionMatrixIsRowStochastic) {
  const PriorityChain chain{{0.3, 0.6, 0.8}};
  for (const auto& row : chain.transition_matrix()) {
    const double sum = std::accumulate(row.begin(), row.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
  }
}

TEST(PriorityChainTest, OnlyAdjacentTranspositionsHavePositiveRate) {
  const PriorityChain chain{{0.3, 0.6, 0.8, 0.4}};
  const auto& states = chain.states();
  const auto& x = chain.transition_matrix();
  for (std::size_t a = 0; a < states.size(); ++a) {
    for (std::size_t b = 0; b < states.size(); ++b) {
      if (a == b || x[a][b] == 0.0) continue;
      EXPECT_TRUE(states[a].is_adjacent_transposition_of(states[b]))
          << states[a].to_string() << " -> " << states[b].to_string();
    }
  }
}

TEST(PriorityChainTest, Equation9Rates) {
  // N=2: from identity [1,2], swapping requires link0 (priority 1) down and
  // link1 (priority 2) up: rate (1-mu0)*mu1 / (N-1) = (1-mu0)*mu1.
  const double mu0 = 0.3;
  const double mu1 = 0.8;
  const PriorityChain chain{{mu0, mu1}};
  const auto id = core::Permutation::identity(2);
  auto swapped = id;
  swapped.swap_adjacent_priorities(1);
  const auto& x = chain.transition_matrix();
  EXPECT_NEAR(x[id.rank()][swapped.rank()], (1.0 - mu0) * mu1, 1e-12);
  EXPECT_NEAR(x[swapped.rank()][id.rank()], (1.0 - mu1) * mu0, 1e-12);
  EXPECT_NEAR(x[id.rank()][id.rank()], 1.0 - (1.0 - mu0) * mu1, 1e-12);
}

TEST(PriorityChainTest, TransmitProbScalesOffDiagonals) {
  const PriorityChain full{{0.3, 0.8}, 1.0};
  const PriorityChain half{{0.3, 0.8}, 0.5};
  const auto id = core::Permutation::identity(2);
  auto swapped = id;
  swapped.swap_adjacent_priorities(1);
  EXPECT_NEAR(half.transition_matrix()[id.rank()][swapped.rank()],
              0.5 * full.transition_matrix()[id.rank()][swapped.rank()], 1e-12);
}

TEST(PriorityChainTest, AnalyticStationaryIsDistribution) {
  const PriorityChain chain{{0.2, 0.5, 0.7}};
  const auto pi = chain.stationary_analytic();
  EXPECT_EQ(pi.size(), 6u);
  EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-12);
  for (double v : pi) EXPECT_GT(v, 0.0);
}

TEST(PriorityChainTest, Proposition2DetailedBalanceHolds) {
  // The analytic law of eq. (10) must satisfy detailed balance w.r.t. the
  // eq. (9) transition matrix — the crux of Proposition 2.
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Rng rng{seed};
    for (std::size_t n : {2u, 3u, 4u, 5u}) {
      std::vector<double> mu(n);
      for (auto& m : mu) m = rng.uniform_real(0.05, 0.95);
      const PriorityChain chain{mu};
      const auto pi = chain.stationary_analytic();
      EXPECT_LT(chain.detailed_balance_residual(pi), 1e-12)
          << "N=" << n << " seed=" << seed;
    }
  }
}

TEST(PriorityChainTest, NumericStationaryMatchesAnalytic) {
  const PriorityChain chain{{0.25, 0.6, 0.85}};
  const auto analytic = chain.stationary_analytic();
  const auto numeric = chain.stationary_numeric();
  EXPECT_LT(total_variation(analytic, numeric), 1e-9);
}

TEST(PriorityChainTest, UniformMuGivesUniformStationary) {
  // Equal coin biases make every permutation equally likely in steady state.
  const PriorityChain chain{{0.4, 0.4, 0.4}};
  const auto pi = chain.stationary_analytic();
  for (double v : pi) EXPECT_NEAR(v, 1.0 / 6.0, 1e-12);
}

TEST(PriorityChainTest, HighMuLinkConcentratesOnTopPriority) {
  // Link 0 with mu near 1 should be at priority 1 almost surely.
  const PriorityChain chain{{0.999, 0.5, 0.5}};
  const auto pi = chain.stationary_analytic();
  double link0_top = 0.0;
  for (std::size_t a = 0; a < chain.num_states(); ++a) {
    if (chain.states()[a].priority_of(0) == 1) link0_top += pi[a];
  }
  EXPECT_GT(link0_top, 0.99);
}

TEST(PriorityChainTest, MixingReducesTvDistance) {
  const PriorityChain chain{{0.3, 0.6, 0.8}};
  const auto start = core::Permutation::identity(3);
  const double tv1 = chain.tv_from_start(start, 1);
  const double tv50 = chain.tv_from_start(start, 50);
  const double tv500 = chain.tv_from_start(start, 500);
  EXPECT_GT(tv1, tv50);
  EXPECT_GT(tv50, tv500);
  EXPECT_LT(tv500, 1e-3);
}

TEST(SpectralGapTest, TwoStateChainClosedForm) {
  // N = 2: X = [[1-a, a],[b, 1-b]] with a = (1-mu0)mu1, b = (1-mu1)mu0.
  // Eigenvalues {1, 1 - a - b} => SLEM = |1 - a - b|.
  const double mu0 = 0.3;
  const double mu1 = 0.8;
  const PriorityChain chain{{mu0, mu1}};
  const double a = (1.0 - mu0) * mu1;
  const double b = (1.0 - mu1) * mu0;
  EXPECT_NEAR(chain.second_eigenvalue_modulus(), std::abs(1.0 - a - b), 1e-9);
}

TEST(SpectralGapTest, SlemBelowOneForErgodicChains) {
  const PriorityChain chain{{0.3, 0.5, 0.7, 0.4}};
  const double slem = chain.second_eigenvalue_modulus();
  EXPECT_GT(slem, 0.0);
  EXPECT_LT(slem, 1.0);
}

TEST(SpectralGapTest, MixingBoundConsistentWithEmpiricalTv) {
  // After t = mixing_time_bound(eps) steps the TV distance must actually be
  // below eps (the bound is an upper bound on the required steps).
  const PriorityChain chain{{0.25, 0.55, 0.8}};
  const double eps = 0.05;
  const auto t = static_cast<int>(chain.mixing_time_bound(eps)) + 1;
  EXPECT_LT(chain.tv_from_start(core::Permutation::identity(3), t), eps);
}

TEST(SpectralGapTest, ExtremerBiasesMixSlower) {
  // Pushing mu toward the boundary shrinks the downward-move probability
  // and hence the spectral gap — the Glauber slowdown behind the two-time-
  // scale caveat in Section V-A.
  const PriorityChain mild{{0.4, 0.6}};
  const PriorityChain extreme{{0.9, 0.97}};
  EXPECT_GT(extreme.second_eigenvalue_modulus(), mild.second_eigenvalue_modulus());
}

TEST(DbdpStationaryLawTest, MatchesProposition3Form) {
  // pi(sigma) ∝ exp(sum g(sigma_n) f(d_n^+) p_n); verify against a direct
  // computation for N=3.
  const core::DebtMu formula{core::Influence::identity(), 10.0};
  const std::vector<double> debts{2.0, 0.5, -1.0};
  const ProbabilityVector p{0.7, 0.9, 0.5};
  const auto pi = dbdp_stationary_law(formula, debts, p);
  const auto states = core::Permutation::all(3);
  std::vector<double> expected(states.size());
  for (std::size_t a = 0; a < states.size(); ++a) {
    double e = 0.0;
    for (LinkId n = 0; n < 3; ++n) {
      const double d_plus = std::max(0.0, debts[n]);
      e += static_cast<double>(3 - states[a].priority_of(n)) * d_plus * p[n];
    }
    expected[a] = std::exp(e);
  }
  normalize(expected);
  EXPECT_LT(total_variation(pi, expected), 1e-12);
}

TEST(DbdpStationaryLawTest, ConcentratesOnEldfOrderingForLargeDebts) {
  // Proposition 4's engine: when debts grow, the stationary law concentrates
  // on orderings sorted by f(d^+) p — exactly the ELDF priorities.
  const core::DebtMu formula{core::Influence::identity(), 10.0};
  const std::vector<double> debts{30.0, 20.0, 10.0};
  const ProbabilityVector p{1.0, 1.0, 1.0};
  const auto pi = dbdp_stationary_law(formula, debts, p);
  // The ELDF ordering is link0 > link1 > link2 == the identity permutation.
  const auto id = core::Permutation::identity(3);
  EXPECT_GT(pi[id.rank()], 0.9999);
}

TEST(PriorityChainTest, FixedMuChainMatchesDbdpLawThroughOdds) {
  // Plugging mu_n = exp(w_n)/(R+exp(w_n)) into eq. (10) must reproduce the
  // eq. (15) law — the two-time-scale substitution of Proposition 3.
  const core::DebtMu formula{core::Influence::paper_log(), 10.0};
  const std::vector<double> debts{3.0, 1.0, 0.2, 5.0};
  const ProbabilityVector p{0.7, 0.9, 0.6, 0.5};
  std::vector<double> mu(4);
  for (std::size_t n = 0; n < 4; ++n) mu[n] = formula.mu(debts[n], p[n]);
  const PriorityChain chain{mu};
  const auto from_chain = chain.stationary_analytic();
  const auto from_law = dbdp_stationary_law(formula, debts, p);
  EXPECT_LT(total_variation(from_chain, from_law), 1e-9);
}

}  // namespace
}  // namespace rtmac::analysis
