#include "mac/fcsma_mac.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "helpers/scheme_harness.hpp"

namespace rtmac::mac {
namespace {

using test::SchemeHarness;

SchemeHarness video_harness(std::size_t n, double p = 1.0) {
  return SchemeHarness{ProbabilityVector(n, p), phy::PhyParams::video_80211a(),
                       Duration::milliseconds(20), RateVector(n, 0.9)};
}

TEST(FcsmaWindowTest, HigherWeightShrinksWindow) {
  const FcsmaParams params;
  int prev = fcsma_window_for_weight(0.0, params);
  for (double w = 0.0; w < 10.0; w += 0.5) {
    const int cw = fcsma_window_for_weight(w, params);
    EXPECT_LE(cw, prev);
    EXPECT_GE(cw, 1);
    prev = cw;
  }
}

TEST(FcsmaWindowTest, SectionBoundaries) {
  const FcsmaParams params;  // width 1.0, windows {128,96,64,48,32}
  EXPECT_EQ(fcsma_window_for_weight(0.0, params), 128);
  EXPECT_EQ(fcsma_window_for_weight(0.99, params), 128);
  EXPECT_EQ(fcsma_window_for_weight(1.0, params), 96);
  EXPECT_EQ(fcsma_window_for_weight(3.5, params), 48);
  EXPECT_EQ(fcsma_window_for_weight(4.5, params), 32);
  EXPECT_EQ(fcsma_window_for_weight(5.0, params), 32);
}

TEST(FcsmaWindowTest, SaturatesAboveTopSection) {
  // The paper's criticism: "the size of contention window is the same for
  // any delivery debt above a certain threshold" — FCSMA becomes oblivious.
  const FcsmaParams params;
  EXPECT_EQ(fcsma_window_for_weight(5.0, params),
            fcsma_window_for_weight(500.0, params));
  EXPECT_EQ(fcsma_window_for_weight(5.0, params),
            fcsma_window_for_weight(5e9, params));
}

TEST(FcsmaWindowTest, CustomSections) {
  FcsmaParams params;
  params.window_sizes = {10, 5};
  params.section_width = 2.0;
  EXPECT_EQ(fcsma_window_for_weight(1.9, params), 10);
  EXPECT_EQ(fcsma_window_for_weight(2.0, params), 5);
  EXPECT_EQ(fcsma_window_for_weight(100.0, params), 5);
}

TEST(FcsmaSchemeTest, SingleLinkDeliversWithoutContention) {
  auto h = video_harness(1);
  const auto ctx = h.context();
  FcsmaScheme fcsma{ctx, FcsmaParams{}, "FCSMA"};
  const auto delivered = h.run_interval(fcsma, {3});
  EXPECT_EQ(delivered, (std::vector<int>{3}));
  EXPECT_EQ(h.medium().counters().collisions, 0u);
}

TEST(FcsmaSchemeTest, ContendingLinksCollide) {
  // Many links with small windows: collisions must occur — the structural
  // weakness the paper contrasts against the DP protocol.
  auto h = video_harness(12);
  const auto ctx = h.context();
  FcsmaParams params;
  params.window_sizes = {4};  // aggressively small windows
  FcsmaScheme fcsma{ctx, params, "FCSMA"};
  for (int k = 0; k < 20; ++k) h.run_interval(fcsma, std::vector<int>(12, 2));
  EXPECT_GT(h.medium().counters().collisions, 0u);
}

TEST(FcsmaSchemeTest, DeliversLessThanCapacityUnderContention) {
  // Saturated demand: FCSMA wastes airtime on collisions + backoff and must
  // deliver strictly less than the 60-packet interval capacity.
  auto h = video_harness(20);
  const auto ctx = h.context();
  FcsmaScheme fcsma{ctx, FcsmaParams{}, "FCSMA"};
  int total = 0;
  for (int k = 0; k < 20; ++k) {
    const auto d = h.run_interval(fcsma, std::vector<int>(20, 4));
    total += std::accumulate(d.begin(), d.end(), 0);
  }
  EXPECT_LT(total, 20 * 60);
  EXPECT_GT(total, 0);
}

TEST(FcsmaSchemeTest, RespectsDeadlineGapRule) {
  auto h = video_harness(5);
  const auto ctx = h.context();
  FcsmaScheme fcsma{ctx, FcsmaParams{}, "FCSMA"};
  for (int k = 0; k < 50; ++k) {
    h.run_interval(fcsma, std::vector<int>(5, 6));
    // run_interval asserts the medium is idle at each boundary.
  }
  SUCCEED();
}

TEST(FcsmaSchemeTest, WindowReactsToDebt) {
  SchemeHarness h{{0.7}, phy::PhyParams::video_80211a(), Duration::milliseconds(20), {0.9}};
  const auto ctx = h.context();
  FcsmaParams params;
  params.influence = core::Influence::identity();
  params.section_width = 1.0;
  FcsmaLinkMac link{h.simulator(), h.medium(), h.debts(), ctx.success_prob, params,
                    ctx.phy.data_airtime, ctx.phy.backoff_slot, 0, 42};
  // Zero debt: weight 0 -> largest window.
  link.begin_interval(0, 1, h.simulator().now() + Duration::milliseconds(20));
  EXPECT_EQ(link.current_window(), 128);
  h.simulator().run();
  link.end_interval();
  // Large debt: weight saturates -> smallest window.
  for (int i = 0; i < 12; ++i) h.debts().on_interval_end({0});
  link.begin_interval(1, 1, h.simulator().now() + Duration::milliseconds(20));
  EXPECT_EQ(link.current_window(), 32);
  h.simulator().run();
  link.end_interval();
}

}  // namespace
}  // namespace rtmac::mac
