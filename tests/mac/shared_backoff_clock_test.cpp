// Equivalence tests for the SharedBackoffClock batch path of the DCF and
// FCSMA baselines.
//
// On a complete-sensing collision domain both schemes replace N per-link
// BackoffEngines with ONE shared slot clock. The clock must be
// draw-for-draw indistinguishable from the scalar machines: the same
// per-link RNG streams consumed in the same order, busy edges freezing the
// same residual counts, ties between simultaneous expiries resolved in the
// same order. Tie order is RESULT-AFFECTING — on complete domains channel
// losses draw from one shared stream in completion order — so whole-network
// runs must be BIT-IDENTICAL between the paths: same deliveries every
// interval, same debts, same Medium counters (including busy_time, which
// catches any timing drift), across seeds and network shapes.
#include "mac/shared_backoff_clock.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "expfw/scenarios.hpp"
#include "mac/dcf_mac.hpp"
#include "mac/fcsma_mac.hpp"
#include "net/network.hpp"
#include "phy/interference.hpp"

namespace rtmac::mac {
namespace {

/// Everything observable about one run that equivalence compares.
struct RunRecord {
  std::vector<std::vector<int>> delivered;  ///< per interval, per link
  std::vector<double> final_debts;
  phy::MediumCounters counters;
  bool batch_path = false;
};

SchemeFactory dcf_path_factory(bool force_scalar) {
  return [force_scalar](const SchemeContext& ctx) {
    DcfParams params;
    params.force_scalar_path = force_scalar;
    return std::make_unique<DcfScheme>(ctx, params,
                                       force_scalar ? "DCF(scalar)" : "DCF");
  };
}

SchemeFactory fcsma_path_factory(bool force_scalar) {
  return [force_scalar](const SchemeContext& ctx) {
    FcsmaParams params;
    params.force_scalar_path = force_scalar;
    return std::make_unique<FcsmaScheme>(ctx, params,
                                         force_scalar ? "FCSMA(scalar)" : "FCSMA");
  };
}

template <typename Scheme>
RunRecord run_scheme(const net::NetworkConfig& base, const SchemeFactory& factory,
                     IntervalIndex intervals) {
  net::Network net{base.clone(), factory};
  RunRecord rec;
  net.add_observer([&rec](IntervalIndex, std::span<const int>, std::span<const int> s) {
    rec.delivered.emplace_back(s.begin(), s.end());
  });
  net.run(intervals);
  rec.final_debts = net.debts().debts();
  const auto* scheme = dynamic_cast<const Scheme*>(&net.scheme());
  EXPECT_NE(scheme, nullptr);
  rec.batch_path = scheme->batch_path();
  rec.counters = net.medium().counters();
  return rec;
}

void expect_identical(const RunRecord& batch, const RunRecord& scalar) {
  EXPECT_TRUE(batch.batch_path);
  EXPECT_FALSE(scalar.batch_path);
  ASSERT_EQ(batch.delivered.size(), scalar.delivered.size());
  for (std::size_t k = 0; k < batch.delivered.size(); ++k) {
    ASSERT_EQ(batch.delivered[k], scalar.delivered[k]) << "diverged at interval " << k;
  }
  EXPECT_EQ(batch.final_debts, scalar.final_debts);
  EXPECT_EQ(batch.counters.data_tx, scalar.counters.data_tx);
  EXPECT_EQ(batch.counters.delivered, scalar.counters.delivered);
  EXPECT_EQ(batch.counters.channel_losses, scalar.counters.channel_losses);
  EXPECT_EQ(batch.counters.collisions, scalar.counters.collisions);
  EXPECT_EQ(batch.counters.busy_time, scalar.counters.busy_time);
}

TEST(SharedBackoffClockTest, DcfVideoScenarioAcrossSeeds) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 1234ULL}) {
    const auto cfg = expfw::video_symmetric(0.55, 0.9, seed);
    const RunRecord batch =
        run_scheme<DcfScheme>(cfg, dcf_path_factory(/*force_scalar=*/false), 120);
    const RunRecord scalar =
        run_scheme<DcfScheme>(cfg, dcf_path_factory(/*force_scalar=*/true), 120);
    expect_identical(batch, scalar);
    // DCF under bursty video load must actually collide (CW doubling and the
    // freeze/resume machinery are exercised, not idled past).
    EXPECT_GT(batch.counters.collisions, 0u);
    EXPECT_GT(batch.counters.data_tx, 0u);
  }
}

TEST(SharedBackoffClockTest, DcfControlScenario) {
  // Different shape: 10 links, Bernoulli arrivals, 2 ms deadline — short
  // intervals hit the deadline gap rule and interval-boundary stop() often.
  const auto cfg = expfw::control_symmetric(0.8, 0.9, 42);
  const RunRecord batch =
      run_scheme<DcfScheme>(cfg, dcf_path_factory(/*force_scalar=*/false), 200);
  const RunRecord scalar =
      run_scheme<DcfScheme>(cfg, dcf_path_factory(/*force_scalar=*/true), 200);
  expect_identical(batch, scalar);
}

TEST(SharedBackoffClockTest, FcsmaVideoScenarioAcrossSeeds) {
  for (const std::uint64_t seed : {3ULL, 11ULL, 4321ULL}) {
    const auto cfg = expfw::video_symmetric(0.55, 0.9, seed);
    const RunRecord batch =
        run_scheme<FcsmaScheme>(cfg, fcsma_path_factory(/*force_scalar=*/false), 120);
    const RunRecord scalar =
        run_scheme<FcsmaScheme>(cfg, fcsma_path_factory(/*force_scalar=*/true), 120);
    expect_identical(batch, scalar);
    EXPECT_GT(batch.counters.data_tx, 0u);
  }
}

TEST(SharedBackoffClockTest, FcsmaControlScenario) {
  const auto cfg = expfw::control_symmetric(0.8, 0.9, 77);
  const RunRecord batch =
      run_scheme<FcsmaScheme>(cfg, fcsma_path_factory(/*force_scalar=*/false), 200);
  const RunRecord scalar =
      run_scheme<FcsmaScheme>(cfg, fcsma_path_factory(/*force_scalar=*/true), 200);
  expect_identical(batch, scalar);
}

TEST(SharedBackoffClockTest, PartialSensingFallsBackToScalar) {
  // A ring interference graph is not a complete collision domain: the batch
  // path must refuse it and run the per-link engines.
  net::NetworkConfig cfg = expfw::video_symmetric(0.55, 0.9, 5);
  const std::size_t n = cfg.num_links();
  std::vector<std::vector<LinkId>> ring(n);
  for (LinkId i = 0; i < n; ++i) {
    ring[i] = {static_cast<LinkId>((i + 1) % n), static_cast<LinkId>((i + n - 1) % n)};
  }
  cfg.topology = phy::InterferenceGraph::from_lists(n, ring, ring);
  net::Network net{std::move(cfg), dcf_path_factory(/*force_scalar=*/false)};
  net.run(20);
  const auto* dcf = dynamic_cast<const DcfScheme*>(&net.scheme());
  ASSERT_NE(dcf, nullptr);
  EXPECT_FALSE(dcf->batch_path());
}

TEST(SharedBackoffClockTest, BatchPathDeclaresTighterEventBound) {
  // The per-cell event reserve keys off this declaration; a batch scheme
  // regressing to the conservative bound would silently re-inflate the
  // 10^6-link memory footprint (the phase-3 RSS ceiling in bench/city_scale).
  net::Network net{expfw::video_symmetric(0.55, 0.9, 2), dcf_path_factory(false)};
  EXPECT_EQ(net.scheme().pending_events_per_link(), 1u);
  net::Network scalar_net{expfw::video_symmetric(0.55, 0.9, 2), dcf_path_factory(true)};
  EXPECT_EQ(scalar_net.scheme().pending_events_per_link(), 6u);
}

}  // namespace
}  // namespace rtmac::mac
