#include "mac/dp_link_mac.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "helpers/scheme_harness.hpp"
#include "mac/priority_provider.hpp"

namespace rtmac::mac {
namespace {

using test::SchemeHarness;

constexpr double kNearZero = 1e-9;
constexpr double kNearOne = 1.0 - 1e-9;

DpLinkParams video_params(bool reordering = true) {
  const auto phy = phy::PhyParams::video_80211a();
  return DpLinkParams{phy.data_airtime, phy.empty_airtime, phy.backoff_slot, reordering};
}

std::unique_ptr<DpScheme> make_dp(SchemeHarness& h, std::vector<double> mu,
                                  bool reordering = true) {
  const auto ctx = h.context();
  return std::make_unique<DpScheme>(ctx, std::make_unique<FixedMuProvider>(std::move(mu)),
                                    video_params(reordering), "DP-test");
}

SchemeHarness video_harness(std::size_t n, double p = 1.0) {
  return SchemeHarness{ProbabilityVector(n, p), phy::PhyParams::video_80211a(),
                       Duration::milliseconds(20), RateVector(n, 0.9)};
}

TEST(SharedSeedTest, SameSeedSameCandidates) {
  const SharedSeed a{7};
  const SharedSeed b{7};
  for (IntervalIndex k = 0; k < 100; ++k) {
    const auto c = a.candidate(k, 20);
    EXPECT_EQ(c, b.candidate(k, 20));
    EXPECT_GE(c, 1u);
    EXPECT_LE(c, 19u);
  }
}

TEST(SharedSeedTest, CandidatesCoverFullRange) {
  const SharedSeed s{3};
  std::vector<int> hits(20, 0);
  for (IntervalIndex k = 0; k < 5000; ++k) hits[s.candidate(k, 20)]++;
  for (PriorityIndex m = 1; m <= 19; ++m) EXPECT_GT(hits[m], 0) << m;
  EXPECT_EQ(hits[0], 0);
}

TEST(DpProtocolTest, ReliableChannelDeliversEverythingUnderLightLoad) {
  auto h = video_harness(4);
  auto dp = make_dp(h, std::vector<double>(4, 0.5));
  for (int k = 0; k < 20; ++k) {
    const auto delivered = h.run_interval(*dp, {1, 1, 1, 1});
    EXPECT_EQ(delivered, (std::vector<int>{1, 1, 1, 1})) << "interval " << k;
  }
  EXPECT_EQ(h.medium().counters().collisions, 0u);
}

TEST(DpProtocolTest, SwapHappensWhenBothCandidatesAgree) {
  // N=2 => the candidate pair is always (priority 1, priority 2).
  // Link 0 starts at priority 1 with mu ~ 0 (coin "down"); link 1 at
  // priority 2 with mu ~ 1 (coin "up"): they must swap after interval 0.
  auto h = video_harness(2);
  auto dp = make_dp(h, {kNearZero, kNearOne});
  EXPECT_EQ(dp->priorities(), core::Permutation::identity(2));

  h.run_interval(*dp, {1, 1});
  EXPECT_EQ(dp->priorities(), core::Permutation::from_priorities({2, 1}));

  // After the swap, link 1 holds priority 1 with mu ~ 1 (coin "up" = stay
  // for the lower candidate) and link 0 holds priority 2 with mu ~ 0 (coin
  // "down" = no move for the upper candidate): stable from now on.
  for (int k = 0; k < 5; ++k) {
    h.run_interval(*dp, {1, 1});
    EXPECT_EQ(dp->priorities(), core::Permutation::from_priorities({2, 1}));
  }
}

TEST(DpProtocolTest, NoSwapWhenLowerCandidateStays) {
  // Both coins "up": the lower candidate keeps its slot and transmits first;
  // the upper candidate must detect the busy channel at backoff 1 and stay.
  auto h = video_harness(2);
  auto dp = make_dp(h, {kNearOne, kNearOne});
  for (int k = 0; k < 5; ++k) {
    h.run_interval(*dp, {1, 1});
    EXPECT_EQ(dp->priorities(), core::Permutation::identity(2));
  }
}

TEST(DpProtocolTest, NoSwapWhenUpperCandidateStays) {
  // Both coins "down": the lower candidate offers its slot but the upper one
  // never claims it; the lower candidate must observe idle at backoff 1 and
  // keep its priority.
  auto h = video_harness(2);
  auto dp = make_dp(h, {kNearZero, kNearZero});
  for (int k = 0; k < 5; ++k) {
    h.run_interval(*dp, {1, 1});
    EXPECT_EQ(dp->priorities(), core::Permutation::identity(2));
  }
}

TEST(DpProtocolTest, EmptyPacketsClaimPrioritiesWithoutTraffic) {
  // No arrivals at all: candidates transmit empty packets so swaps still
  // confirm on the air.
  auto h = video_harness(2);
  auto dp = make_dp(h, {kNearZero, kNearOne});
  const auto delivered = h.run_interval(*dp, {0, 0});
  EXPECT_EQ(delivered, (std::vector<int>{0, 0}));
  EXPECT_EQ(dp->priorities(), core::Permutation::from_priorities({2, 1}));
  EXPECT_GT(h.medium().counters().empty_tx, 0u);
  EXPECT_EQ(h.medium().counters().data_tx, 0u);
}

TEST(DpProtocolTest, StaticPrioritiesNeverChange) {
  auto h = video_harness(4);
  auto dp = make_dp(h, std::vector<double>(4, 0.5), /*reordering=*/false);
  for (int k = 0; k < 30; ++k) {
    h.run_interval(*dp, {1, 1, 1, 1});
    EXPECT_EQ(dp->priorities(), core::Permutation::identity(4));
  }
  // Static mode never sends empty claim packets.
  EXPECT_EQ(h.medium().counters().empty_tx, 0u);
}

TEST(DpProtocolTest, StaticPriorityStarvationOrdering) {
  // Interval fits only 2 data packets (plus backoff): with 4 links each
  // holding 1 packet and p = 1, only the two highest-priority links deliver.
  SchemeHarness h{ProbabilityVector(4, 1.0), phy::PhyParams::video_80211a(),
                  Duration::microseconds(750), RateVector(4, 0.5)};
  const auto ctx = h.context();
  DpScheme dp{ctx, std::make_unique<FixedMuProvider>(std::vector<double>(4, 0.5)),
              video_params(/*reordering=*/false), "DP-static"};
  const auto delivered = h.run_interval(dp, {1, 1, 1, 1});
  EXPECT_EQ(delivered, (std::vector<int>{1, 1, 0, 0}));
}

TEST(DpProtocolTest, UnreliableChannelRetransmitsWithinInterval) {
  // p = 0.5 but 60 transmission opportunities for 4 packets: effectively all
  // packets should make it within the interval.
  auto h = video_harness(4, 0.5);
  auto dp = make_dp(h, std::vector<double>(4, 0.5));
  int total = 0;
  for (int k = 0; k < 50; ++k) {
    for (int d : h.run_interval(*dp, {1, 1, 1, 1})) total += d;
  }
  EXPECT_EQ(total, 200);  // all delivered despite 50% loss
  EXPECT_GT(h.medium().counters().channel_losses, 0u);
  EXPECT_EQ(h.medium().counters().collisions, 0u);
}

TEST(DpProtocolTest, CollisionFreeUnderRandomReordering) {
  // 8 links, random coins, heavy traffic, many intervals: the unique-backoff
  // design must keep the medium collision-free throughout.
  auto h = video_harness(8, 0.7);
  auto dp = make_dp(h, std::vector<double>(8, 0.5));
  for (int k = 0; k < 200; ++k) {
    h.run_interval(*dp, std::vector<int>(8, 2));
    EXPECT_TRUE(dp->priorities().valid());
  }
  EXPECT_EQ(h.medium().counters().collisions, 0u);
  EXPECT_GT(h.medium().counters().data_tx, 0u);
}

TEST(DpProtocolTest, PriorityEvolutionIsAdjacentTranspositions) {
  auto h = video_harness(6, 0.9);
  auto dp = make_dp(h, std::vector<double>(6, 0.5));
  core::Permutation prev = dp->priorities();
  int swaps = 0;
  for (int k = 0; k < 300; ++k) {
    h.run_interval(*dp, std::vector<int>(6, 1));
    const core::Permutation cur = dp->priorities();
    if (cur != prev) {
      PriorityIndex m = 0;
      EXPECT_TRUE(prev.is_adjacent_transposition_of(cur, &m))
          << prev.to_string() << " -> " << cur.to_string();
      ++swaps;
    }
    prev = cur;
  }
  // With mu = 0.5 the swap probability per interval is 0.25; over 300
  // intervals seeing zero swaps would be astronomically unlikely.
  EXPECT_GT(swaps, 20);
}

TEST(DpProtocolTest, TransmissionsStartedCountsClaims) {
  auto h = video_harness(2);
  const auto ctx = h.context();
  DpScheme dp{ctx, std::make_unique<FixedMuProvider>(std::vector<double>{kNearZero, kNearOne}),
              video_params(), "DP"};
  h.run_interval(dp, {0, 0});
  // Both candidates had no traffic; each transmitted exactly one empty claim
  // packet (the upper one to claim the swap; the lower one at its shifted
  // backoff).
  EXPECT_EQ(h.medium().counters().empty_tx, 2u);
}

TEST(DpProtocolTest, SingleLinkNetworkDegeneratesToTdma) {
  // N = 1: no candidate pairs exist; the link transmits with backoff 0
  // every interval and reordering is vacuous.
  SchemeHarness h{ProbabilityVector(1, 1.0), phy::PhyParams::video_80211a(),
                  Duration::milliseconds(20), RateVector(1, 0.9)};
  const auto ctx = h.context();
  DpScheme dp{ctx, std::make_unique<FixedMuProvider>(std::vector<double>{0.5}),
              video_params(), "DP-1"};
  for (int k = 0; k < 10; ++k) {
    EXPECT_EQ(h.run_interval(dp, {3}), (std::vector<int>{3}));
    EXPECT_EQ(dp.priorities(), core::Permutation::identity(1));
  }
  EXPECT_EQ(h.medium().counters().empty_tx, 0u);
}

TEST(DpProtocolTest, TinyIntervalGapClaimKeepsConsistency) {
  // Interval fits one data packet + one empty claim at most. This hammers
  // the swap-consistency rule (DESIGN.md 4b): candidates whose data cannot
  // fit must claim with empty packets or both abstain — the permutation
  // must never diverge. Run many intervals with random coins.
  SchemeHarness h{ProbabilityVector(4, 0.6), phy::PhyParams::video_80211a(),
                  Duration::microseconds(450), RateVector(4, 0.2)};
  const auto ctx = h.context();
  DpScheme dp{ctx, std::make_unique<FixedMuProvider>(std::vector<double>(4, 0.5)),
              video_params(), "DP-tiny"};
  for (int k = 0; k < 500; ++k) {
    h.run_interval(dp, {1, 1, 1, 1});
    ASSERT_TRUE(dp.priorities().valid()) << "diverged at interval " << k;
  }
  EXPECT_EQ(h.medium().counters().collisions, 0u);
}

TEST(DpProtocolTest, SubSlotIntervalNothingHappens) {
  // Interval shorter than even an empty packet: nobody transmits, nothing
  // is delivered, priorities never change (no claim can confirm a swap).
  SchemeHarness h{ProbabilityVector(3, 1.0), phy::PhyParams::video_80211a(),
                  Duration::microseconds(350), RateVector(3, 0.1)};
  const auto ctx = h.context();
  DpScheme dp{ctx, std::make_unique<FixedMuProvider>(std::vector<double>(3, 0.5)),
              video_params(), "DP-sub"};
  // 350us fits one data packet for the priority-1 link (backoff 0) only if
  // its backoff is 0; links at backoff >= 1 wait 9us+ and then cannot fit
  // 330us... priority 1 transmits at t=0, ends 330us; others cannot fit.
  const auto d0 = h.run_interval(dp, {1, 1, 1});
  EXPECT_EQ(d0[0] + d0[1] + d0[2], 1);
  EXPECT_TRUE(dp.priorities().valid());
}

TEST(DpProtocolTest, BurstyTrafficMixedWithSilentLinks) {
  // Some links never have traffic; candidates among them use empty claims,
  // and the loaded links' deliveries are unaffected by silent bystanders.
  auto h = video_harness(6);
  auto dp = make_dp(h, std::vector<double>(6, 0.5));
  for (int k = 0; k < 50; ++k) {
    const auto delivered = h.run_interval(*dp, {4, 0, 4, 0, 4, 0});
    EXPECT_EQ(delivered[0], 4);
    EXPECT_EQ(delivered[2], 4);
    EXPECT_EQ(delivered[4], 4);
    EXPECT_EQ(delivered[1] + delivered[3] + delivered[5], 0);
  }
  EXPECT_EQ(h.medium().counters().collisions, 0u);
}

TEST(DpProtocolTest, BackoffOverheadIsBounded) {
  // Remark: backoff count never exceeds N+1, so the pre-transmission idle
  // time per link is at most (N+1) slots. With N=4 and all links loaded the
  // busy time must dominate the interval.
  auto h = video_harness(4);
  auto dp = make_dp(h, std::vector<double>(4, 0.5));
  for (int k = 0; k < 10; ++k) h.run_interval(*dp, {6, 6, 6, 6});
  // 24 packets * 330us = 7.92ms per 20ms interval; overhead only a few slots.
  const double busy_fraction = h.medium().counters().busy_time.seconds_f() / (10 * 0.020);
  EXPECT_GT(busy_fraction, 0.35);
  EXPECT_LT(busy_fraction, 0.45);
}

}  // namespace
}  // namespace rtmac::mac
