// Equivalence and regression tests for the batch SoA DP path.
//
// Three layers of defence keep the batch kernel honest:
//   1. kernel math vs the per-link formulas (dp_backoff_count & friends);
//   2. whole-network runs: batch path vs the retained scalar reference path
//      must be BIT-IDENTICAL — same deliveries every interval, same debts,
//      same priorities, same channel counters — across randomized seeds,
//      network sizes, reliabilities, and multi-pair configurations;
//   3. allocation regression: the steady-state interval hot path of the
//      batch DP scheme (and of centralized LDF) performs zero heap
//      allocations, counted with interposed global new/delete.
#include "mac/dp_batch_kernel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "core/debt.hpp"
#include "core/mu.hpp"
#include "expfw/scenarios.hpp"
#include "mac/dp_link_mac.hpp"
#include "mac/priority_provider.hpp"
#include "net/network.hpp"
#include "phy/interference.hpp"
#include "phy/phy_params.hpp"

// ---- allocation counting ----------------------------------------------------
// Interposed global new/delete: counts every heap allocation made by this
// binary. Tests read the counter around a measurement window; gtest's own
// allocations outside the window are irrelevant.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
}  // namespace

// gcc -O2 cannot see that the replaced operator new forwards to malloc, so
// inlined delete sites trip -Wmismatched-new-delete; the pairing is correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) { return counted_alloc(size); }
void* operator new[](std::size_t size, std::align_val_t) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace rtmac::mac {
namespace {

// ---- 1. kernel math vs per-link formulas ------------------------------------

TEST(DpBatchKernelTest, PlanIntervalMatchesPerLinkFormulas) {
  constexpr std::size_t kN = 8;
  const SharedSeed shared{77};
  const FixedMuProvider provider{std::vector<double>(kN, 0.5)};
  std::vector<PriorityIndex> initial(kN);
  for (LinkId n = 0; n < kN; ++n) initial[n] = static_cast<PriorityIndex>(n + 1);
  DpBatchKernel kernel{kN, shared, provider, /*reordering=*/true, /*max_pairs=*/1,
                       initial,  /*seed=*/123};

  for (IntervalIndex k = 0; k < 200; ++k) {
    kernel.plan_interval(k);
    const auto pairs = kernel.candidate_pairs();
    ASSERT_EQ(pairs.size(), 1u);
    EXPECT_EQ(pairs[0], shared.candidate(k, kN));
    for (LinkId n = 0; n < kN; ++n) {
      bool is_lower = false;
      const bool candidate = dp_is_candidate(kernel.priority(n), pairs, &is_lower);
      EXPECT_EQ(kernel.is_candidate(n), candidate);
      if (candidate) {
        EXPECT_EQ(kernel.role(n),
                  is_lower ? DpBatchKernel::Role::kLower : DpBatchKernel::Role::kUpper);
        EXPECT_TRUE(kernel.coin(n) == 1 || kernel.coin(n) == -1);
      } else {
        EXPECT_EQ(kernel.role(n), DpBatchKernel::Role::kBystander);
        EXPECT_EQ(kernel.coin(n), 0);
      }
      EXPECT_EQ(kernel.backoff_count(n),
                dp_backoff_count(kernel.priority(n), pairs, kernel.coin(n)));
    }
    // Collision freedom: windows are pairwise distinct whatever the coins.
    std::set<int> betas(kernel.backoff_counts().begin(), kernel.backoff_counts().end());
    EXPECT_EQ(betas.size(), kN);
  }
}

TEST(DpBatchKernelTest, MultiPairWindowsStayUnique) {
  constexpr std::size_t kN = 12;
  const SharedSeed shared{5};
  const FixedMuProvider provider{std::vector<double>(kN, 0.5)};
  std::vector<PriorityIndex> initial(kN);
  for (LinkId n = 0; n < kN; ++n) initial[n] = static_cast<PriorityIndex>(n + 1);
  DpBatchKernel kernel{kN, shared, provider, /*reordering=*/true, /*max_pairs=*/3,
                       initial,  /*seed=*/9};
  for (IntervalIndex k = 0; k < 300; ++k) {
    kernel.plan_interval(k);
    std::set<int> betas(kernel.backoff_counts().begin(), kernel.backoff_counts().end());
    EXPECT_EQ(betas.size(), kN) << "duplicate window at interval " << k;
  }
}

// ---- 2. batch path vs scalar reference, whole-network runs ------------------

/// Everything observable about one run that equivalence compares.
struct RunRecord {
  std::vector<std::vector<int>> delivered;  ///< per interval, per link
  std::vector<double> final_debts;
  std::vector<PriorityIndex> final_priorities;
  phy::MediumCounters counters;
  bool batch_path = false;
};

mac::SchemeFactory dbdp_path_factory(bool force_scalar, int max_swap_pairs = 1) {
  return [force_scalar, max_swap_pairs](const mac::SchemeContext& ctx) {
    auto provider = std::make_unique<mac::DebtMuProvider>(
        core::DebtMu{expfw::paper_influence(), expfw::kPaperR}, ctx.debts,
        ctx.success_prob);
    const mac::DpLinkParams params{
        .data_airtime = ctx.phy.data_airtime,
        .empty_airtime = ctx.phy.empty_airtime,
        .backoff_slot = ctx.phy.backoff_slot,
        .reordering = true,
        .max_swap_pairs = max_swap_pairs,
        .force_scalar_path = force_scalar,
    };
    return std::make_unique<mac::DpScheme>(ctx, std::move(provider), params,
                                           force_scalar ? "DB-DP(scalar)" : "DB-DP");
  };
}

RunRecord run_dbdp(const net::NetworkConfig& base, bool force_scalar,
                   IntervalIndex intervals, int max_swap_pairs = 1) {
  net::Network net{base.clone(), dbdp_path_factory(force_scalar, max_swap_pairs)};
  RunRecord rec;
  net.add_observer([&rec](IntervalIndex, std::span<const int>, std::span<const int> s) {
    rec.delivered.emplace_back(s.begin(), s.end());
  });
  net.run(intervals);
  rec.final_debts = net.debts().debts();
  const auto* dp = dynamic_cast<const DpScheme*>(&net.scheme());
  EXPECT_NE(dp, nullptr);
  rec.final_priorities = dp->priority_vector();
  rec.batch_path = dp->batch_path();
  rec.counters = net.medium().counters();
  return rec;
}

void expect_identical(const RunRecord& batch, const RunRecord& scalar) {
  EXPECT_TRUE(batch.batch_path);
  EXPECT_FALSE(scalar.batch_path);
  ASSERT_EQ(batch.delivered.size(), scalar.delivered.size());
  for (std::size_t k = 0; k < batch.delivered.size(); ++k) {
    ASSERT_EQ(batch.delivered[k], scalar.delivered[k]) << "diverged at interval " << k;
  }
  EXPECT_EQ(batch.final_debts, scalar.final_debts);
  EXPECT_EQ(batch.final_priorities, scalar.final_priorities);
  EXPECT_EQ(batch.counters.data_tx, scalar.counters.data_tx);
  EXPECT_EQ(batch.counters.empty_tx, scalar.counters.empty_tx);
  EXPECT_EQ(batch.counters.delivered, scalar.counters.delivered);
  EXPECT_EQ(batch.counters.channel_losses, scalar.counters.channel_losses);
  EXPECT_EQ(batch.counters.collisions, 0u);
  EXPECT_EQ(scalar.counters.collisions, 0u);
  EXPECT_EQ(batch.counters.busy_time, scalar.counters.busy_time);
}

TEST(DpBatchEquivalenceTest, VideoScenarioAcrossSeeds) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 1234ULL}) {
    const auto cfg = expfw::video_symmetric(0.55, 0.9, seed);
    const RunRecord batch = run_dbdp(cfg, /*force_scalar=*/false, 120);
    const RunRecord scalar = run_dbdp(cfg, /*force_scalar=*/true, 120);
    expect_identical(batch, scalar);
    EXPECT_GT(batch.counters.data_tx, 0u);
  }
}

TEST(DpBatchEquivalenceTest, SmallLossyNetwork) {
  // Different shape: 6 links, heavy loss, tighter requirement — exercises
  // retransmission bursts and empty claims far more often per interval.
  const auto cfg = expfw::video_symmetric(0.55, 0.9, 99);
  net::NetworkConfig small = cfg.clone();
  small.success_prob = ProbabilityVector(6, 0.6);
  // Arrivals stay on the shared uniform spec, which covers any link count.
  small.requirements.lambda.resize(6);
  small.requirements.rho.assign(6, 0.8);
  const RunRecord batch = run_dbdp(small, /*force_scalar=*/false, 150);
  const RunRecord scalar = run_dbdp(small, /*force_scalar=*/true, 150);
  expect_identical(batch, scalar);
  EXPECT_GT(batch.counters.channel_losses, 0u);
}

TEST(DpBatchEquivalenceTest, MultiPairSwaps) {
  const auto cfg = expfw::video_symmetric(0.55, 0.9, 21);
  const RunRecord batch = run_dbdp(cfg, /*force_scalar=*/false, 80, /*max_swap_pairs=*/3);
  const RunRecord scalar = run_dbdp(cfg, /*force_scalar=*/true, 80, /*max_swap_pairs=*/3);
  expect_identical(batch, scalar);
}

TEST(DpBatchEquivalenceTest, PartialSensingFallsBackToScalar) {
  // A ring interference graph is not a complete collision domain: the batch
  // path must refuse it and both "paths" run the per-link engines.
  net::NetworkConfig cfg = expfw::video_symmetric(0.55, 0.9, 3);
  const std::size_t n = cfg.num_links();
  std::vector<std::vector<LinkId>> ring(n);
  for (LinkId i = 0; i < n; ++i) {
    ring[i] = {static_cast<LinkId>((i + 1) % n), static_cast<LinkId>((i + n - 1) % n)};
  }
  cfg.topology = phy::InterferenceGraph::from_lists(n, ring, ring);
  net::Network net{std::move(cfg), dbdp_path_factory(/*force_scalar=*/false)};
  net.run(20);
  const auto* dp = dynamic_cast<const DpScheme*>(&net.scheme());
  ASSERT_NE(dp, nullptr);
  EXPECT_FALSE(dp->batch_path());
}

// ---- 3. allocation regression ----------------------------------------------

/// Allocations across `measure` intervals after `warmup` intervals of
/// warm-up (buffers at working-set capacity, RNG and pools primed).
std::uint64_t steady_state_allocs(const mac::SchemeFactory& factory, IntervalIndex warmup,
                                  IntervalIndex measure) {
  net::Network net{expfw::video_symmetric(0.55, 0.9, 1), factory};
  net.run(warmup);
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  net.run(measure);
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

TEST(DpBatchAllocTest, SteadyStateIntervalPathIsAllocationFree) {
  EXPECT_EQ(steady_state_allocs(expfw::dbdp_factory(), 8, 32), 0u);
}

TEST(DpBatchAllocTest, LdfSteadyStateIntervalPathIsAllocationFree) {
  EXPECT_EQ(steady_state_allocs(expfw::ldf_factory(), 8, 32), 0u);
}

}  // namespace
}  // namespace rtmac::mac
