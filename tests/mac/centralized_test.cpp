#include "mac/centralized_scheduler.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "helpers/scheme_harness.hpp"

namespace rtmac::mac {
namespace {

using test::SchemeHarness;

SchemeHarness video_harness(std::size_t n, double p = 1.0) {
  return SchemeHarness{ProbabilityVector(n, p), phy::PhyParams::video_80211a(),
                       Duration::milliseconds(20), RateVector(n, 0.9)};
}

CentralizedScheme make_ldf(SchemeHarness& h) {
  const auto ctx = h.context();
  return CentralizedScheme{ctx, CentralizedParams{core::Influence::identity()}, "LDF"};
}

TEST(CentralizedTest, DeliversAllUnderLightLoad) {
  auto h = video_harness(4);
  auto ldf = make_ldf(h);
  const auto delivered = h.run_interval(ldf, {2, 3, 1, 2});
  EXPECT_EQ(delivered, (std::vector<int>{2, 3, 1, 2}));
}

TEST(CentralizedTest, CapacityIsSixtyTransmissionsPerVideoInterval) {
  // 20 links x 4 packets = 80 demanded, but only 60 slots fit in 20 ms.
  auto h = video_harness(20);
  auto ldf = make_ldf(h);
  const auto delivered = h.run_interval(ldf, std::vector<int>(20, 4));
  EXPECT_EQ(std::accumulate(delivered.begin(), delivered.end(), 0), 60);
}

TEST(CentralizedTest, ZeroDebtTieBreaksByLinkId) {
  // All debts zero: stable sort serves links in id order.
  auto h = video_harness(3);
  auto ldf = make_ldf(h);
  h.run_interval(ldf, {1, 1, 1});
  EXPECT_EQ(ldf.current_ordering(), (std::vector<LinkId>{0, 1, 2}));
}

TEST(CentralizedTest, LargestDebtServedFirst) {
  auto h = video_harness(3);
  auto ldf = make_ldf(h);
  // After two intervals with deliveries only on links 0 and 1, link 2 has
  // the largest positive debt and links 0 < 1 have distinct smaller ones.
  h.debts().on_interval_end({1, 0, 0});  // d = (-0.1, 0.9, 0.9)
  h.debts().on_interval_end({1, 1, 0});  // d = (-0.2, 0.8, 1.8)
  h.run_interval(ldf, {1, 1, 1});
  EXPECT_EQ(ldf.current_ordering(), (std::vector<LinkId>{2, 1, 0}));
}

TEST(CentralizedTest, EldfWeightsByInfluenceTimesReliability) {
  // p = (0.9, 0.3), equal positive debts, identity influence:
  // weight = d * p favours link 0.
  SchemeHarness h{{0.9, 0.3}, phy::PhyParams::video_80211a(), Duration::milliseconds(20),
                  {0.5, 0.5}};
  const auto ctx = h.context();
  CentralizedScheme eldf{ctx, CentralizedParams{core::Influence::identity()}, "ELDF"};
  h.debts().on_interval_end({0, 0});  // both debts 0.5
  h.run_interval(eldf, {1, 1});
  EXPECT_EQ(eldf.current_ordering(), (std::vector<LinkId>{0, 1}));
}

TEST(CentralizedTest, NegativeDebtClipsToZeroWeight) {
  auto h = video_harness(2);
  auto ldf = make_ldf(h);
  h.debts().on_interval_end({5, 0});  // link 0 debt negative, link 1 positive
  h.run_interval(ldf, {1, 1});
  EXPECT_EQ(ldf.current_ordering(), (std::vector<LinkId>{1, 0}));
}

TEST(CentralizedTest, RetransmitsUntilDelivered) {
  // Single link, p = 0.4, one packet, 60 opportunities: essentially always
  // delivered; channel losses must be visible in the medium counters.
  SchemeHarness h{{0.4}, phy::PhyParams::video_80211a(), Duration::milliseconds(20), {0.9}};
  const auto ctx = h.context();
  CentralizedScheme ldf{ctx, CentralizedParams{}, "LDF"};
  int total = 0;
  for (int k = 0; k < 100; ++k) total += h.run_interval(ldf, {1})[0];
  EXPECT_EQ(total, 100);
  EXPECT_GT(h.medium().counters().channel_losses, 0u);
}

TEST(CentralizedTest, NoBackoffOverhead) {
  // The genie transmits back to back: busy time == 60 airtimes exactly when
  // demand saturates the interval.
  auto h = video_harness(20);
  auto ldf = make_ldf(h);
  h.run_interval(ldf, std::vector<int>(20, 4));
  EXPECT_EQ(h.medium().counters().busy_time, Duration::microseconds(330) * 60);
  EXPECT_EQ(h.medium().counters().collisions, 0u);
}

TEST(CentralizedTest, ControlProfileSixteenSlots) {
  SchemeHarness h{ProbabilityVector(10, 1.0), phy::PhyParams::control_80211a(),
                  Duration::milliseconds(2), RateVector(10, 0.5)};
  const auto ctx = h.context();
  CentralizedScheme ldf{ctx, CentralizedParams{}, "LDF"};
  const auto delivered = h.run_interval(ldf, std::vector<int>(10, 2));
  EXPECT_EQ(std::accumulate(delivered.begin(), delivered.end(), 0), 16);
}

TEST(CentralizedTest, EmptyIntervalStaysIdle) {
  auto h = video_harness(3);
  auto ldf = make_ldf(h);
  const auto delivered = h.run_interval(ldf, {0, 0, 0});
  EXPECT_EQ(delivered, (std::vector<int>{0, 0, 0}));
  EXPECT_EQ(h.medium().counters().data_tx, 0u);
}

}  // namespace
}  // namespace rtmac::mac
