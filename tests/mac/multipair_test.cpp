// Tests for the Remark 6 generalization: multiple disjoint candidate pairs
// per interval. The invariants are the same as for the single-pair
// protocol — unique backoffs (collision freedom), consistent swap commits,
// and the unchanged product-form stationary law — plus the new one: every
// interval's priority change is a product of disjoint adjacent
// transpositions anchored at the selected pairs.
#include <gtest/gtest.h>

#include <set>

#include "analysis/priority_chain.hpp"
#include "expfw/scenarios.hpp"
#include "helpers/scheme_harness.hpp"
#include "mac/dp_link_mac.hpp"
#include "mac/priority_provider.hpp"
#include "net/network.hpp"
#include "traffic/arrival_process.hpp"
#include "util/math.hpp"

namespace rtmac::mac {
namespace {

using test::SchemeHarness;

TEST(CandidateSetTest, SinglePairReducesToCandidate) {
  const SharedSeed seed{42};
  for (IntervalIndex k = 0; k < 200; ++k) {
    const auto set = seed.candidate_set(k, 20, 1);
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set[0], seed.candidate(k, 20));
  }
}

TEST(CandidateSetTest, PairsAreNonConsecutiveAndInRange) {
  const SharedSeed seed{7};
  for (IntervalIndex k = 0; k < 500; ++k) {
    const auto set = seed.candidate_set(k, 20, 5);
    EXPECT_LE(set.size(), 5u);
    EXPECT_GE(set.size(), 1u);
    for (std::size_t i = 0; i < set.size(); ++i) {
      EXPECT_GE(set[i], 1u);
      EXPECT_LE(set[i], 19u);
      if (i > 0) {
        EXPECT_GE(set[i] - set[i - 1], 2u) << "pairs must be disjoint";
      }
    }
  }
}

TEST(CandidateSetTest, IdenticalAcrossDevices) {
  const SharedSeed a{99};
  const SharedSeed b{99};
  for (IntervalIndex k = 0; k < 100; ++k) {
    EXPECT_EQ(a.candidate_set(k, 12, 4), b.candidate_set(k, 12, 4));
  }
}

TEST(CandidateSetTest, RequestedCountIsReachedWhenFeasible) {
  // N = 20 always admits at least 5 disjoint pairs; greedy selection from a
  // full shuffle should regularly produce the full count.
  const SharedSeed seed{3};
  std::size_t max_seen = 0;
  for (IntervalIndex k = 0; k < 200; ++k) {
    max_seen = std::max(max_seen, seed.candidate_set(k, 20, 5).size());
  }
  EXPECT_EQ(max_seen, 5u);
}

TEST(BackoffAssignmentTest, SinglePairReducesToEquationSix) {
  // sigma < C: beta = sigma - 1; sigma > C+1: beta = sigma + 1;
  // candidates: beta = sigma - xi.
  const std::vector<PriorityIndex> pairs{5};
  EXPECT_EQ(dp_backoff_count(3, pairs, 0), 2);
  EXPECT_EQ(dp_backoff_count(8, pairs, 0), 9);
  EXPECT_EQ(dp_backoff_count(5, pairs, +1), 4);
  EXPECT_EQ(dp_backoff_count(5, pairs, -1), 6);
  EXPECT_EQ(dp_backoff_count(6, pairs, +1), 5);
  EXPECT_EQ(dp_backoff_count(6, pairs, -1), 7);
}

TEST(BackoffAssignmentTest, CandidateDetection) {
  const std::vector<PriorityIndex> pairs{2, 6};
  bool lower = false;
  EXPECT_TRUE(dp_is_candidate(2, pairs, &lower));
  EXPECT_TRUE(lower);
  EXPECT_TRUE(dp_is_candidate(3, pairs, &lower));
  EXPECT_FALSE(lower);
  EXPECT_TRUE(dp_is_candidate(7, pairs, &lower));
  EXPECT_FALSE(lower);
  EXPECT_FALSE(dp_is_candidate(1, pairs));
  EXPECT_FALSE(dp_is_candidate(4, pairs));
  EXPECT_FALSE(dp_is_candidate(8, pairs));
}

TEST(BackoffAssignmentTest, UniquenessExhaustiveOverCoinsAndPairSets) {
  // THE collision-freedom invariant: for every N <= 10, every valid
  // non-consecutive anchor set, and every coin assignment of the candidates,
  // all N links receive distinct backoff counts. Coins are enumerated
  // exhaustively per pair (each pair's two candidates have 4 combinations;
  // pairs are independent, so enumerate 4^P combinations).
  for (std::size_t n = 2; n <= 10; ++n) {
    // Enumerate all non-consecutive anchor subsets of {1..n-1} via bitmask.
    const unsigned max_mask = 1u << (n - 1);
    for (unsigned mask = 1; mask < max_mask; ++mask) {
      if ((mask & (mask << 1)) != 0) continue;  // consecutive anchors: skip
      std::vector<PriorityIndex> pairs;
      for (std::size_t b = 0; b < n - 1; ++b) {
        if (mask & (1u << b)) pairs.push_back(static_cast<PriorityIndex>(b + 1));
      }
      const std::size_t p_count = pairs.size();
      for (unsigned coins = 0; coins < (1u << (2 * p_count)); ++coins) {
        std::vector<int> xi(n + 1, 0);  // indexed by priority
        for (std::size_t i = 0; i < p_count; ++i) {
          xi[pairs[i]] = (coins >> (2 * i)) & 1 ? +1 : -1;
          xi[pairs[i] + 1] = (coins >> (2 * i + 1)) & 1 ? +1 : -1;
        }
        std::set<int> betas;
        for (PriorityIndex sigma = 1; sigma <= n; ++sigma) {
          const int beta = dp_backoff_count(sigma, pairs, xi[sigma]);
          EXPECT_GE(beta, 0);
          EXPECT_TRUE(betas.insert(beta).second)
              << "duplicate backoff " << beta << " at N=" << n << " mask=" << mask
              << " coins=" << coins;
        }
      }
    }
  }
}

TEST(BackoffAssignmentTest, BackoffBoundedByNPlusTwoPairs) {
  // Overhead bound quoted in DESIGN.md: beta <= N - 1 + 2 * pairs.
  for (std::size_t n = 2; n <= 12; ++n) {
    const std::vector<PriorityIndex> pairs =
        n >= 7 ? std::vector<PriorityIndex>{1, 3, 5} : std::vector<PriorityIndex>{1};
    for (PriorityIndex sigma = 1; sigma <= n; ++sigma) {
      for (int xi : {-1, +1, 0}) {
        if (dp_is_candidate(sigma, pairs) == (xi == 0)) continue;
        const int beta = dp_backoff_count(sigma, pairs, xi);
        EXPECT_LE(beta, static_cast<int>(n) - 1 + 2 * static_cast<int>(pairs.size()));
      }
    }
  }
}

DpLinkParams multi_params(int pairs) {
  const auto phy = phy::PhyParams::video_80211a();
  return DpLinkParams{phy.data_airtime, phy.empty_airtime, phy.backoff_slot, true, pairs};
}

TEST(MultiPairDpTest, CollisionFreeAtScale) {
  SchemeHarness h{ProbabilityVector(12, 0.7), phy::PhyParams::video_80211a(),
                  Duration::milliseconds(20), RateVector(12, 0.9)};
  const auto ctx = h.context();
  DpScheme dp{ctx, std::make_unique<FixedMuProvider>(std::vector<double>(12, 0.5)),
              multi_params(4), "DP-x4"};
  for (int k = 0; k < 300; ++k) {
    h.run_interval(dp, std::vector<int>(12, 2));
    EXPECT_TRUE(dp.priorities().valid());
  }
  EXPECT_EQ(h.medium().counters().collisions, 0u);
}

TEST(MultiPairDpTest, ChangesAreDisjointAdjacentTranspositionsAtSelectedPairs) {
  SchemeHarness h{ProbabilityVector(10, 1.0), phy::PhyParams::video_80211a(),
                  Duration::milliseconds(20), RateVector(10, 0.9), /*seed=*/5};
  const auto ctx = h.context();
  DpScheme dp{ctx, std::make_unique<FixedMuProvider>(std::vector<double>(10, 0.5)),
              multi_params(3), "DP-x3"};
  const SharedSeed seed{mix64(5, 0x5EEDC0DE)};  // mirrors DpScheme's internal seed
  core::Permutation prev = dp.priorities();
  int multi_swap_intervals = 0;
  for (IntervalIndex k = 0; k < 400; ++k) {
    h.run_interval(dp, std::vector<int>(10, 1));
    const core::Permutation cur = dp.priorities();
    const auto anchors = seed.candidate_set(k, 10, 3);
    // Decompose the change: each differing link must belong to a selected
    // pair, and the pair's two links must have exchanged priorities.
    std::set<PriorityIndex> anchor_set(anchors.begin(), anchors.end());
    const auto diff = prev.symmetric_difference(cur);
    EXPECT_EQ(diff.size() % 2, 0u);
    std::set<PriorityIndex> seen_anchors;
    for (LinkId n : diff) {
      const PriorityIndex lo = std::min(prev.priority_of(n), cur.priority_of(n));
      const PriorityIndex hi = std::max(prev.priority_of(n), cur.priority_of(n));
      EXPECT_EQ(hi, lo + 1) << "non-adjacent move";
      EXPECT_TRUE(anchor_set.contains(lo)) << "move outside the selected pairs";
      seen_anchors.insert(lo);
    }
    EXPECT_EQ(2 * seen_anchors.size(), diff.size());
    if (seen_anchors.size() >= 2) ++multi_swap_intervals;
    prev = cur;
  }
  // With 3 pairs and mu = 0.5, simultaneous swaps at distinct pairs must
  // actually occur (p ~ 3 * 0.25^2-ish per interval; 400 draws suffice).
  EXPECT_GT(multi_swap_intervals, 0);
}

TEST(MultiPairDpTest, StationaryLawUnchangedByMultiPairDynamics) {
  // Remark 6's point: adding disjoint pairs accelerates mixing but keeps
  // the eq. (10) stationary law. Validate empirically at N = 4, 2 pairs.
  const std::vector<double> mu{0.3, 0.45, 0.6, 0.75};
  auto cfg = net::symmetric_network(4, Duration::milliseconds(2),
                                    phy::PhyParams::control_80211a(), 0.9,
                                    traffic::BernoulliArrivals{0.3}, 0.5, 31337);
  net::Network network{std::move(cfg), expfw::dp_fixed_mu_factory(mu, /*pairs=*/2)};
  auto* dp = dynamic_cast<DpScheme*>(&network.scheme());
  ASSERT_NE(dp, nullptr);
  network.run(2000);
  std::vector<double> counts(24, 0.0);
  network.add_observer([&](IntervalIndex, std::span<const int>, std::span<const int>) {
    counts[dp->priorities().rank()] += 1.0;
  });
  network.run(60000);
  normalize(counts);
  const analysis::PriorityChain chain{mu};
  EXPECT_LT(total_variation(counts, chain.stationary_analytic()), 0.04);
}

TEST(MultiPairDpTest, FasterConvergenceThanSinglePair) {
  // The reason Remark 6 exists: more pairs, faster spreading. Compare the
  // deficiency of the initially-bottom link after a short horizon.
  auto run = [&](int pairs) {
    net::Network net{expfw::video_symmetric(0.55, 0.9, 55),
                     pairs == 1 ? expfw::dbdp_factory() : expfw::dbdp_multipair_factory(pairs)};
    net.run(800);
    return net.total_deficiency();
  };
  const double one = run(1);
  const double four = run(4);
  EXPECT_LT(four, one + 0.05);  // never meaningfully worse...
  EXPECT_LT(four, 0.75 * one + 0.1);  // ...and materially better in transient
}

TEST(MultiPairDpTest, DeliversEverythingUnderLightLoadReliableChannel) {
  SchemeHarness h{ProbabilityVector(6, 1.0), phy::PhyParams::video_80211a(),
                  Duration::milliseconds(20), RateVector(6, 0.9)};
  const auto ctx = h.context();
  DpScheme dp{ctx, std::make_unique<FixedMuProvider>(std::vector<double>(6, 0.5)),
              multi_params(2), "DP-x2"};
  for (int k = 0; k < 30; ++k) {
    EXPECT_EQ(h.run_interval(dp, std::vector<int>(6, 1)), std::vector<int>(6, 1));
  }
}

}  // namespace
}  // namespace rtmac::mac
