#include "mac/backoff_engine.hpp"

#include <gtest/gtest.h>

#include "phy/medium.hpp"
#include "sim/simulator.hpp"

namespace rtmac::mac {
namespace {

constexpr auto kSlot = Duration::microseconds(9);

struct Fixture {
  sim::Simulator sim;
  phy::Medium medium{sim, {1.0, 1.0, 1.0}, 99};
};

TEST(BackoffEngineTest, ExpiresAfterCountSlotsOnIdleMedium) {
  Fixture f;
  BackoffEngine engine{f.sim, f.medium, kSlot};
  TimePoint fired_at;
  bool fired = false;
  f.sim.schedule_in(Duration{}, [&] {
    engine.start(5, [&] {
      fired = true;
      fired_at = f.sim.now();
    });
  });
  f.sim.run();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(engine.expired());
  EXPECT_EQ(fired_at, TimePoint::origin() + 5 * kSlot);
}

TEST(BackoffEngineTest, ZeroCountExpiresImmediatelyViaEventHop) {
  Fixture f;
  BackoffEngine engine{f.sim, f.medium, kSlot};
  bool fired = false;
  f.sim.schedule_in(Duration::microseconds(100), [&] {
    engine.start(0, [&] {
      fired = true;
      EXPECT_EQ(f.sim.now().ns(), 100'000);
    });
    EXPECT_FALSE(fired);  // not synchronous
  });
  f.sim.run();
  EXPECT_TRUE(fired);
}

TEST(BackoffEngineTest, FreezesDuringBusyAndResumesAfter) {
  Fixture f;
  BackoffEngine engine{f.sim, f.medium, kSlot};
  TimePoint fired_at;
  f.sim.schedule_in(Duration{}, [&] {
    engine.start(5, [&] { fired_at = f.sim.now(); });
  });
  // Busy period starting after 2 full slots, lasting 100us.
  f.sim.schedule_in(2 * kSlot, [&] {
    f.medium.start_transmission(1, Duration::microseconds(100), phy::PacketKind::kData,
                                nullptr);
  });
  f.sim.run();
  // 2 slots counted, freeze for 100us, then 3 remaining slots.
  EXPECT_EQ(fired_at, TimePoint::origin() + 2 * kSlot + Duration::microseconds(100) + 3 * kSlot);
  EXPECT_TRUE(engine.was_frozen_at(3));
  EXPECT_FALSE(engine.was_frozen_at(2));
}

TEST(BackoffEngineTest, PartialSlotProgressIsDiscarded) {
  Fixture f;
  BackoffEngine engine{f.sim, f.medium, kSlot};
  TimePoint fired_at;
  f.sim.schedule_in(Duration{}, [&] {
    engine.start(4, [&] { fired_at = f.sim.now(); });
  });
  // Busy arrives 2.5 slots in: only 2 full slots count.
  const Duration busy_at = 2 * kSlot + Duration::from_us_f(4.5);
  f.sim.schedule_in(busy_at, [&] {
    f.medium.start_transmission(1, Duration::microseconds(50), phy::PacketKind::kData, nullptr);
  });
  f.sim.run();
  EXPECT_EQ(fired_at,
            TimePoint::origin() + busy_at + Duration::microseconds(50) + 2 * kSlot);
}

TEST(BackoffEngineTest, MultipleFreezesAccumulateRecords) {
  Fixture f;
  BackoffEngine engine{f.sim, f.medium, kSlot};
  f.sim.schedule_in(Duration{}, [&] { engine.start(6, nullptr); });
  f.sim.schedule_in(2 * kSlot, [&] {
    f.medium.start_transmission(1, Duration::microseconds(20), phy::PacketKind::kData, nullptr);
  });
  f.sim.schedule_in(2 * kSlot + Duration::microseconds(20) + 3 * kSlot, [&] {
    f.medium.start_transmission(2, Duration::microseconds(20), phy::PacketKind::kData, nullptr);
  });
  f.sim.run();
  EXPECT_TRUE(engine.was_frozen_at(4));
  EXPECT_TRUE(engine.was_frozen_at(1));
  EXPECT_FALSE(engine.was_frozen_at(3));
}

TEST(BackoffEngineTest, StartWhileBusyWaitsForIdle) {
  Fixture f;
  BackoffEngine engine{f.sim, f.medium, kSlot};
  TimePoint fired_at;
  f.sim.schedule_in(Duration{}, [&] {
    f.medium.start_transmission(1, Duration::microseconds(90), phy::PacketKind::kData, nullptr);
  });
  f.sim.schedule_in(Duration::microseconds(10), [&] {
    engine.start(2, [&] { fired_at = f.sim.now(); });
    EXPECT_EQ(engine.remaining(), 2);
  });
  f.sim.run();
  EXPECT_EQ(fired_at, TimePoint::origin() + Duration::microseconds(90) + 2 * kSlot);
}

TEST(BackoffEngineTest, StopCancelsExpiry) {
  Fixture f;
  BackoffEngine engine{f.sim, f.medium, kSlot};
  bool fired = false;
  f.sim.schedule_in(Duration{}, [&] { engine.start(3, [&] { fired = true; }); });
  f.sim.schedule_in(kSlot, [&] { engine.stop(); });
  f.sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(engine.running());
  EXPECT_FALSE(engine.expired());
}

TEST(BackoffEngineTest, RestartResetsFreezeRecords) {
  Fixture f;
  BackoffEngine engine{f.sim, f.medium, kSlot};
  f.sim.schedule_in(Duration{}, [&] { engine.start(3, nullptr); });
  f.sim.schedule_in(kSlot, [&] {
    f.medium.start_transmission(1, Duration::microseconds(10), phy::PacketKind::kData, nullptr);
  });
  f.sim.run();
  EXPECT_TRUE(engine.was_frozen_at(2));
  engine.start(1, nullptr);
  EXPECT_FALSE(engine.was_frozen_at(2));
  engine.stop();
}

TEST(BackoffEngineTest, SimultaneousExpiryBothFire) {
  // Two engines with equal counts reach zero in the same slot: both expire
  // (and in a CSMA MAC would collide) — neither may swallow the other.
  Fixture f;
  BackoffEngine e1{f.sim, f.medium, kSlot};
  BackoffEngine e2{f.sim, f.medium, kSlot};
  int fired = 0;
  f.sim.schedule_in(Duration{}, [&] {
    e1.start(3, [&] {
      ++fired;
      f.medium.start_transmission(0, Duration::microseconds(30), phy::PacketKind::kData,
                                  nullptr);
    });
    e2.start(3, [&] {
      ++fired;
      f.medium.start_transmission(1, Duration::microseconds(30), phy::PacketKind::kData,
                                  nullptr);
    });
  });
  f.sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(f.medium.counters().collisions, 2u);
}

TEST(BackoffEngineTest, StaggeredCountsDoNotCollide) {
  Fixture f;
  BackoffEngine e1{f.sim, f.medium, kSlot};
  BackoffEngine e2{f.sim, f.medium, kSlot};
  f.sim.schedule_in(Duration{}, [&] {
    e1.start(1, [&] {
      f.medium.start_transmission(0, Duration::microseconds(30), phy::PacketKind::kData,
                                  nullptr);
    });
    e2.start(2, [&] {
      f.medium.start_transmission(1, Duration::microseconds(30), phy::PacketKind::kData,
                                  nullptr);
    });
  });
  f.sim.run();
  EXPECT_EQ(f.medium.counters().collisions, 0u);
  EXPECT_EQ(f.medium.counters().data_tx, 2u);
  // e2 froze while waiting for e1's transmission with one slot left.
  EXPECT_TRUE(e2.was_frozen_at(1));
}

TEST(BackoffEngineTest, RemainingReportsLiveCountdown) {
  Fixture f;
  BackoffEngine engine{f.sim, f.medium, kSlot};
  f.sim.schedule_in(Duration{}, [&] { engine.start(5, nullptr); });
  f.sim.schedule_in(2 * kSlot, [&] { EXPECT_EQ(engine.remaining(), 3); });
  f.sim.run();
}

TEST(BackoffEngineTest, PerNodeViewIgnoresUnsensedTransmissions) {
  // Hidden pair: node 1 cannot hear link 0. An engine observing node 1's
  // sense view counts straight through link 0's transmission, while an
  // engine on the global view freezes for its whole duration.
  sim::Simulator sim;
  phy::Medium medium{sim, {1.0, 1.0},
                     phy::InterferenceGraph::from_lists(2, {{1}, {0}}, {{}, {}}), 99};
  BackoffEngine deaf{sim, medium, kSlot, /*sense_node=*/1};
  BackoffEngine global{sim, medium, kSlot};
  TimePoint deaf_fired;
  TimePoint global_fired;
  sim.schedule_in(Duration{}, [&] {
    deaf.start(5, [&] { deaf_fired = sim.now(); });
    global.start(5, [&] { global_fired = sim.now(); });
    medium.start_transmission(0, Duration::microseconds(100), phy::PacketKind::kData,
                              nullptr);
  });
  sim.run();
  EXPECT_EQ(deaf_fired, TimePoint::origin() + 5 * kSlot);
  EXPECT_EQ(global_fired, TimePoint::origin() + Duration::microseconds(100) + 5 * kSlot);
  EXPECT_EQ(deaf.total_frozen_time(), Duration{});
  EXPECT_EQ(global.total_frozen_time(), Duration::microseconds(100));
}

TEST(BackoffEngineTest, PerNodeViewFreezesOnSensedTransmissions) {
  // The same engine does freeze for a transmission its node senses.
  sim::Simulator sim;
  phy::Medium medium{sim, {1.0, 1.0},
                     phy::InterferenceGraph::from_lists(2, {{}, {}}, {{1}, {0}}), 99};
  BackoffEngine engine{sim, medium, kSlot, /*sense_node=*/1};
  TimePoint fired;
  sim.schedule_in(Duration{}, [&] {
    engine.start(5, [&] { fired = sim.now(); });
    medium.start_transmission(0, Duration::microseconds(100), phy::PacketKind::kData,
                              nullptr);
  });
  sim.run();
  EXPECT_EQ(fired, TimePoint::origin() + Duration::microseconds(100) + 5 * kSlot);
  EXPECT_TRUE(engine.was_frozen_at(5));
}

}  // namespace
}  // namespace rtmac::mac
