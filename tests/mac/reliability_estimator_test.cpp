#include "mac/reliability_estimator.hpp"

#include <gtest/gtest.h>

#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

namespace rtmac::mac {
namespace {

TEST(ReliabilityEstimatorTest, PriorMeanBeforeObservations) {
  const ReliabilityEstimator est{3, 0.6, 2.0};
  for (LinkId n = 0; n < 3; ++n) {
    EXPECT_DOUBLE_EQ(est.estimate(n), 0.6);
    EXPECT_EQ(est.observations(n), 0u);
  }
}

TEST(ReliabilityEstimatorTest, PosteriorMeanFormula) {
  ReliabilityEstimator est{1, 0.5, 2.0};
  est.record(0, true);
  est.record(0, true);
  est.record(0, false);
  // (2 + 2*0.5) / (3 + 2) = 3/5.
  EXPECT_DOUBLE_EQ(est.estimate(0), 0.6);
  EXPECT_EQ(est.observations(0), 3u);
}

TEST(ReliabilityEstimatorTest, ConvergesToTrueP) {
  ReliabilityEstimator est{1};
  Rng rng{7};
  for (int i = 0; i < 50000; ++i) est.record(0, rng.bernoulli(0.7));
  EXPECT_NEAR(est.estimate(0), 0.7, 0.01);
}

TEST(ReliabilityEstimatorTest, LinksAreIndependent) {
  ReliabilityEstimator est{2, 0.5, 2.0};
  est.record(0, true);
  EXPECT_GT(est.estimate(0), 0.5);
  EXPECT_DOUBLE_EQ(est.estimate(1), 0.5);
}

TEST(EstimatedMuProviderTest, MuTracksLearnedReliability) {
  core::DebtTracker debts{{0.9}};
  EstimatedMuProvider provider{core::DebtMu{core::Influence::identity(), 10.0}, debts, 1};
  debts.on_interval_end({0});  // debt = 0.9
  const double mu_before = provider.mu(0, 0);
  // Many successes raise the estimate and therefore mu.
  for (int i = 0; i < 100; ++i) provider.estimator().record(0, true);
  EXPECT_GT(provider.mu(0, 0), mu_before);
}

TEST(EstimatedDbdpTest, LinksLearnTheirOwnChannels) {
  // Asymmetric reliabilities; after a run, each link's posterior must be
  // near its true p, having only observed its own transmissions.
  net::NetworkConfig cfg;
  cfg.interval_length = Duration::milliseconds(20);
  cfg.phy = phy::PhyParams::video_80211a();
  cfg.seed = 5;
  const std::vector<double> true_p{0.4, 0.6, 0.8, 0.95};
  for (double p : true_p) {
    cfg.success_prob.push_back(p);
    cfg.arrivals.push_back(std::make_unique<traffic::ConstantArrivals>(2));
    cfg.requirements.lambda.push_back(2.0);
    cfg.requirements.rho.push_back(0.9);
  }
  net::Network net{std::move(cfg), expfw::dbdp_estimated_p_factory()};
  net.run(1500);
  auto* dp = dynamic_cast<DpScheme*>(&net.scheme());
  ASSERT_NE(dp, nullptr);
  // Reach the estimator through the provider the factory installed: easiest
  // is to re-derive the estimates from per-link medium counters instead.
  for (LinkId n = 0; n < 4; ++n) {
    const auto& lc = net.medium().link_counters(n);
    ASSERT_GT(lc.data_tx, 100u);
    const double empirical = static_cast<double>(lc.delivered) /
                             static_cast<double>(lc.data_tx);
    EXPECT_NEAR(empirical, true_p[n], 0.06) << "link " << n;
  }
}

TEST(EstimatedDbdpTest, LearnedPMatchesOracleFulfilment) {
  // The headline robustness check: DB-DP with learned p fulfills the same
  // feasible requirement as DB-DP with oracle p.
  auto run = [](const mac::SchemeFactory& f) {
    net::Network net{expfw::video_symmetric(0.45, 0.9, 77), f};
    net.run(1500);
    return net.total_deficiency();
  };
  EXPECT_LT(run(expfw::dbdp_estimated_p_factory()), 0.15);
  EXPECT_LT(run(expfw::dbdp_factory()), 0.15);
}

TEST(EstimatedDbdpTest, CollisionFreeWithEstimation) {
  net::Network net{expfw::video_symmetric(0.5, 0.9, 78), expfw::dbdp_estimated_p_factory()};
  net.run(300);
  EXPECT_EQ(net.medium().counters().collisions, 0u);
}

}  // namespace
}  // namespace rtmac::mac
