#include "mac/dcf_mac.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "helpers/scheme_harness.hpp"

namespace rtmac::mac {
namespace {

using test::SchemeHarness;

SchemeHarness video_harness(std::size_t n, double p = 1.0) {
  return SchemeHarness{ProbabilityVector(n, p), phy::PhyParams::video_80211a(),
                       Duration::milliseconds(20), RateVector(n, 0.9)};
}

TEST(DcfTest, SingleLinkDelivers) {
  auto h = video_harness(1);
  const auto ctx = h.context();
  DcfScheme dcf{ctx, DcfParams{}, "DCF"};
  const auto delivered = h.run_interval(dcf, {4});
  EXPECT_EQ(delivered, (std::vector<int>{4}));
}

TEST(DcfTest, WindowDoublesOnFailureAndResetsOnSuccess) {
  SchemeHarness h{{1.0, 1.0}, phy::PhyParams::video_80211a(), Duration::milliseconds(20),
                  {0.9, 0.9}};
  const auto ctx = h.context();
  DcfParams params;
  params.cw_min = 2;  // force frequent collisions
  params.cw_max = 64;
  DcfLinkMac a{h.simulator(), h.medium(), params, ctx.phy.data_airtime, ctx.phy.backoff_slot,
               0, 7};
  DcfLinkMac b{h.simulator(), h.medium(), params, ctx.phy.data_airtime, ctx.phy.backoff_slot,
               1, 8};
  a.begin_interval(0, 10, h.simulator().now() + Duration::milliseconds(20));
  b.begin_interval(0, 10, h.simulator().now() + Duration::milliseconds(20));
  h.simulator().run_until(h.simulator().now() + Duration::milliseconds(20));
  const int da = a.end_interval();
  const int db = b.end_interval();
  // With CWmin=2 and two saturated links, some collisions are certain; the
  // exponential backoff must still let most packets through eventually.
  EXPECT_GT(h.medium().counters().collisions, 0u);
  EXPECT_GT(da + db, 0);
}

TEST(DcfTest, SaturatedNetworkLosesCapacityToCollisions) {
  auto h = video_harness(20);
  const auto ctx = h.context();
  DcfScheme dcf{ctx, DcfParams{}, "DCF"};
  int total = 0;
  for (int k = 0; k < 20; ++k) {
    const auto d = h.run_interval(dcf, std::vector<int>(20, 4));
    total += std::accumulate(d.begin(), d.end(), 0);
  }
  EXPECT_LT(total, 20 * 60);
  EXPECT_GT(h.medium().counters().collisions, 0u);
}

TEST(DcfTest, CurrentWindowStartsAtMin) {
  SchemeHarness h{{1.0}, phy::PhyParams::video_80211a(), Duration::milliseconds(20), {0.9}};
  const auto ctx = h.context();
  DcfParams params;
  DcfLinkMac link{h.simulator(), h.medium(), params, ctx.phy.data_airtime,
                  ctx.phy.backoff_slot, 0, 7};
  EXPECT_EQ(link.current_window(), params.cw_min);
}

}  // namespace
}  // namespace rtmac::mac
