#include "util/args.hpp"

#include <gtest/gtest.h>

namespace rtmac {
namespace {

ArgParser parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return ArgParser{static_cast<int>(argv.size()), argv.data()};
}

TEST(ArgParserTest, KeyValueSpaceForm) {
  const auto args = parse({"--alpha", "0.55", "--links", "20"});
  EXPECT_TRUE(args.has("alpha"));
  EXPECT_DOUBLE_EQ(args.get("alpha", 0.0), 0.55);
  EXPECT_EQ(args.get("links", std::int64_t{0}), 20);
}

TEST(ArgParserTest, KeyValueEqualsForm) {
  const auto args = parse({"--alpha=0.7", "--scheme=ldf"});
  EXPECT_DOUBLE_EQ(args.get("alpha", 0.0), 0.7);
  EXPECT_EQ(args.get("scheme", std::string{}), "ldf");
}

TEST(ArgParserTest, BooleanSwitches) {
  const auto args = parse({"--verbose", "--learned-p", "--flag=false"});
  EXPECT_TRUE(args.get("verbose", false));
  EXPECT_TRUE(args.get("learned-p", false));
  EXPECT_FALSE(args.get("flag", true));
  EXPECT_FALSE(args.get("absent", false));
  EXPECT_TRUE(args.get("absent", true));
}

TEST(ArgParserTest, SwitchFollowedByFlagDoesNotConsume) {
  const auto args = parse({"--verbose", "--alpha", "0.5"});
  EXPECT_TRUE(args.get("verbose", false));
  EXPECT_DOUBLE_EQ(args.get("alpha", 0.0), 0.5);
}

TEST(ArgParserTest, PositionalArguments) {
  const auto args = parse({"input.csv", "--alpha", "0.5", "more"});
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"input.csv", "more"}));
}

TEST(ArgParserTest, MalformedNumberFallsBack) {
  const auto args = parse({"--alpha", "not-a-number"});
  EXPECT_DOUBLE_EQ(args.get("alpha", 0.25), 0.25);
  EXPECT_EQ(args.get("alpha", std::int64_t{7}), 7);
}

TEST(ArgParserTest, DefaultsWhenMissing) {
  const auto args = parse({});
  EXPECT_FALSE(args.has("alpha"));
  EXPECT_DOUBLE_EQ(args.get("alpha", 1.5), 1.5);
  EXPECT_EQ(args.get("name", std::string{"x"}), "x");
}

TEST(ArgParserTest, UnknownFlagDetection) {
  const auto args = parse({"--alpha", "0.5", "--tpyo", "3"});
  const auto unknown = args.unknown_flags({"alpha", "rho"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "tpyo");
}

TEST(ArgParserTest, LastValueWins) {
  const auto args = parse({"--alpha", "0.1", "--alpha", "0.9"});
  EXPECT_DOUBLE_EQ(args.get("alpha", 0.0), 0.9);
}

}  // namespace
}  // namespace rtmac
