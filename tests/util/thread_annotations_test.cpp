// Runtime behavior of the annotated locking primitives. The interesting
// property — that misuse fails to compile — lives in tests/static/; these
// tests pin down that the wrappers actually lock, wake, and relock.
#include "util/thread_annotations.hpp"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rtmac::util {
namespace {

TEST(MutexTest, TryLockReflectsOwnership) {
  // try_lock results branch explicitly (not through gtest macros) so the
  // thread-safety analysis can follow which paths hold the capability.
  Mutex mu;
  const bool first = mu.try_lock();
  ASSERT_TRUE(first);
  if (!first) return;
  bool other_acquired = true;
  std::thread other{[&mu, &other_acquired] {
    const bool got = mu.try_lock();
    if (got) mu.unlock();
    other_acquired = got;
  }};
  other.join();
  EXPECT_FALSE(other_acquired);
  mu.unlock();
  const bool again = mu.try_lock();
  EXPECT_TRUE(again);
  if (again) mu.unlock();
}

TEST(LockGuardTest, GuardsACounterAcrossThreads) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        const LockGuard lock{mu};
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  const LockGuard lock{mu};
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(LockGuardTest, RelockRoundTrip) {
  Mutex mu;
  LockGuard lock{mu};
  lock.unlock();
  const bool released = mu.try_lock();  // really released
  EXPECT_TRUE(released);
  if (released) mu.unlock();
  lock.lock();  // destructor then releases the re-acquired lock
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread waiter{[&] {
    LockGuard lock{mu};
    while (!ready) cv.wait(lock);
    observed = 1;
  }};
  {
    const LockGuard lock{mu};
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(PhantomCapabilityTest, LockIsZeroCostAndScoped) {
  // Purely a compile-time construct: acquiring is a no-op, the scoped form
  // nests, and the object carries no state.
  static PhantomCapability phase;
  {
    const PhantomLock outer{phase};
  }
  {
    const PhantomLock again{phase};
  }
  static_assert(sizeof(PhantomLock) == 1, "PhantomLock must carry no state");
  SUCCEED();
}

}  // namespace
}  // namespace rtmac::util
