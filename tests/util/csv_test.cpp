#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rtmac {
namespace {

TEST(CsvEscapeTest, PlainValuesPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("3.14"), "3.14");
}

TEST(CsvEscapeTest, SeparatorTriggersQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("a;b", ';'), "\"a;b\"");
  EXPECT_EQ(csv_escape("a;b", ','), "a;b");
}

TEST(CsvEscapeTest, QuotesAreDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, NewlinesTriggerQuoting) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterTest, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv{out};
  csv.header({"x", "y"});
  csv.field(1.5).field(std::int64_t{2});
  csv.end_row();
  csv.field("label,with,commas").field(3.0);
  csv.end_row();
  EXPECT_EQ(out.str(), "x,y\n1.5,2\n\"label,with,commas\",3\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(CsvWriterTest, DoubleRoundTripPrecision) {
  std::ostringstream out;
  CsvWriter csv{out};
  csv.field(0.1234567891);
  csv.end_row();
  EXPECT_EQ(out.str(), "0.1234567891\n");
}

TEST(CsvWriterTest, CustomSeparator) {
  std::ostringstream out;
  CsvWriter csv{out, ';'};
  csv.field("a").field("b");
  csv.end_row();
  EXPECT_EQ(out.str(), "a;b\n");
}

TEST(CsvWriterTest, CommentLinesCarryProvenance) {
  std::ostringstream out;
  CsvWriter csv{out};
  csv.comment("reps=8");
  csv.header({"x", "y"});
  csv.field(1.0).field(2.0);
  csv.end_row();
  EXPECT_EQ(out.str(), "# reps=8\nx,y\n1,2\n");
}

}  // namespace
}  // namespace rtmac
