#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rtmac {
namespace {

TEST(TablePrinterTest, RendersHeaderSeparatorAndRows) {
  TablePrinter table{{"name", "value"}};
  table.add_row({"alpha", "0.55"});
  table.add_row({"rho", "0.9"});
  std::ostringstream out;
  table.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("|-------|-------|"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 0.55  |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinterTest, ColumnWidthsFitLongestCell) {
  TablePrinter table{{"x"}};
  table.add_row({"longer-cell"});
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("| longer-cell |"), std::string::npos);
  EXPECT_NE(out.str().find("| x           |"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTableStillRendersHeader) {
  TablePrinter table{{"a", "b"}};
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("| a | b |"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatters) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(1.0), "1.0000");
  EXPECT_EQ(TablePrinter::num(std::int64_t{-42}), "-42");
}

}  // namespace
}  // namespace rtmac
