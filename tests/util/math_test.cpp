#include "util/math.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rtmac {
namespace {

TEST(MathTest, PositivePart) {
  EXPECT_EQ(positive_part(3.5), 3.5);
  EXPECT_EQ(positive_part(-2.0), 0.0);
  EXPECT_EQ(positive_part(0.0), 0.0);
}

TEST(MathTest, MeanAndVariance) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(sample_variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_EQ(sample_variance(std::vector<double>{7.0}), 0.0);
}

TEST(MathTest, TotalVariation) {
  const std::vector<double> p{0.5, 0.5};
  const std::vector<double> q{1.0, 0.0};
  EXPECT_DOUBLE_EQ(total_variation(p, q), 0.5);
  EXPECT_DOUBLE_EQ(total_variation(p, p), 0.0);
}

TEST(MathTest, LinfNorm) {
  const std::vector<double> xs{1.0, -4.0, 2.0};
  EXPECT_DOUBLE_EQ(linf_norm(xs), 4.0);
  EXPECT_DOUBLE_EQ(linf_norm(std::vector<double>{}), 0.0);
}

TEST(MathTest, Factorial) {
  EXPECT_DOUBLE_EQ(factorial(0), 1.0);
  EXPECT_DOUBLE_EQ(factorial(1), 1.0);
  EXPECT_DOUBLE_EQ(factorial(5), 120.0);
  EXPECT_DOUBLE_EQ(factorial(10), 3628800.0);
}

TEST(MathTest, NormalizeMakesDistribution) {
  std::vector<double> xs{1.0, 3.0};
  const double sum = normalize(xs);
  EXPECT_DOUBLE_EQ(sum, 4.0);
  EXPECT_DOUBLE_EQ(xs[0], 0.25);
  EXPECT_DOUBLE_EQ(xs[1], 0.75);
}

TEST(MathTest, NormalizeLeavesZeroVector) {
  std::vector<double> xs{0.0, 0.0};
  EXPECT_DOUBLE_EQ(normalize(xs), 0.0);
  EXPECT_DOUBLE_EQ(xs[0], 0.0);
}

TEST(MathTest, Binomial) {
  EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 6), 0.0);
  EXPECT_DOUBLE_EQ(binomial(60, 30), binomial(60, 30));
}

TEST(MathTest, BinomialPmfSumsToOne) {
  for (unsigned n : {1u, 5u, 20u}) {
    double total = 0.0;
    for (unsigned k = 0; k <= n; ++k) total += binomial_pmf(n, k, 0.3);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(MathTest, BinomialPmfKnownValues) {
  EXPECT_NEAR(binomial_pmf(2, 1, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(binomial_pmf(3, 0, 0.5), 0.125, 1e-12);
  EXPECT_DOUBLE_EQ(binomial_pmf(3, 4, 0.5), 0.0);
}

}  // namespace
}  // namespace rtmac
