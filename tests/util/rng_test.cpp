#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

namespace rtmac {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  SplitMix64 a{42};
  SplitMix64 b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a{1};
  SplitMix64 b{2};
  EXPECT_NE(a.next(), b.next());
}

TEST(Mix64Test, DependsOnBothArguments) {
  EXPECT_NE(mix64(1, 1), mix64(1, 2));
  EXPECT_NE(mix64(1, 1), mix64(2, 1));
  EXPECT_EQ(mix64(7, 9), mix64(7, 9));
}

TEST(RngTest, DeterministicUnderSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, StreamsAreIndependentButReproducible) {
  Rng a{123, 0};
  Rng b{123, 1};
  Rng a2{123, 0};
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    if (va != b.next_u64()) any_diff = true;
    EXPECT_EQ(va, a2.next_u64());
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng{7};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformIntStaysInRangeAndHitsEndpoints) {
  Rng rng{99};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng{5};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng{2024};
  std::array<int, 6> counts{};
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) counts[static_cast<std::size_t>(rng.uniform_int(0, 5))]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 1.0 / 6.0, 0.01);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng{31};
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.7) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.7, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng{1};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RngTest, UniformRealBounds) {
  Rng rng{8};
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UsableWithStdDistributions) {
  Rng rng{55};
  // UniformRandomBitGenerator requirements.
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  const auto v = rng();
  (void)v;
}

}  // namespace
}  // namespace rtmac
