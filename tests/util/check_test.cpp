#include "util/check.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace rtmac {
namespace {

struct CapturedFailure {
  std::string kind;
  std::string expr;
  std::string file;
  int line = 0;
  std::string message;
};

CapturedFailure g_last;

struct CheckFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Handlers are plain function pointers, so the capture goes through globals.
void throwing_handler(const char* kind, const char* expr, const char* file, int line,
                      const std::string& message) {
  g_last = {kind, expr, file, line, message};
  throw CheckFailure(message);
}

class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_ = set_check_failure_handler(&throwing_handler);
    g_last = {};
  }
  void TearDown() override { set_check_failure_handler(prev_); }

  CheckFailureHandler prev_ = nullptr;
};

TEST_F(CheckTest, UnreachableFiresInEveryConfiguration) {
  const auto before = check_failures();
  EXPECT_THROW(RTMAC_UNREACHABLE("bad scheme id ", 7), CheckFailure);
  EXPECT_EQ(check_failures(), before + 1);
  EXPECT_EQ(g_last.kind, "RTMAC_UNREACHABLE");
  EXPECT_EQ(g_last.message, "bad scheme id 7");
  EXPECT_NE(g_last.file.find("check_test.cpp"), std::string::npos);
  EXPECT_GT(g_last.line, 0);
}

TEST_F(CheckTest, PassingChecksAreSilent) {
  const auto before = check_failures();
  RTMAC_ASSERT(1 + 1 == 2, "never formatted");
  RTMAC_REQUIRE(true);
  EXPECT_EQ(check_failures(), before);
}

TEST_F(CheckTest, FailingAssertReportsKindExprAndFormattedMessage) {
  if (!kChecksEnabled) {
    GTEST_SKIP() << "contracts compiled out (NDEBUG without RTMAC_CHECKED)";
  }
  const auto before = check_failures();
  const int pr = 9;
  const int n = 4;
  EXPECT_THROW(RTMAC_ASSERT(pr <= n, "priority ", pr, " out of range for N=", n), CheckFailure);
  EXPECT_EQ(check_failures(), before + 1);
  EXPECT_EQ(g_last.kind, "RTMAC_ASSERT");
  EXPECT_EQ(g_last.expr, "pr <= n");
  EXPECT_EQ(g_last.message, "priority 9 out of range for N=4");
}

TEST_F(CheckTest, FailingRequireReportsRequireKind) {
  if (!kChecksEnabled) {
    GTEST_SKIP() << "contracts compiled out (NDEBUG without RTMAC_CHECKED)";
  }
  const double mu = 1.5;
  EXPECT_THROW(RTMAC_REQUIRE(mu < 1.0, "mu must lie in (0,1), got ", mu), CheckFailure);
  EXPECT_EQ(g_last.kind, "RTMAC_REQUIRE");
  EXPECT_EQ(g_last.message, "mu must lie in (0,1), got 1.5");
}

TEST_F(CheckTest, MessageWithNoArgsIsEmpty) {
  if (!kChecksEnabled) {
    GTEST_SKIP() << "contracts compiled out (NDEBUG without RTMAC_CHECKED)";
  }
  EXPECT_THROW(RTMAC_ASSERT(false), CheckFailure);
  EXPECT_EQ(g_last.message, "");
}

TEST_F(CheckTest, ConditionEvaluatedExactlyWhenChecksEnabled) {
  int evaluations = 0;
  auto pred = [&evaluations] {
    ++evaluations;
    return true;
  };
  RTMAC_ASSERT(pred(), "side-effect probe");
  EXPECT_EQ(evaluations, kChecksEnabled ? 1 : 0);
}

TEST_F(CheckTest, MessageArgsNeverEvaluatedOnSuccess) {
  // The message is formatted only on the failure path, so a passing check has
  // zero observable cost beyond the condition itself.
  int message_evals = 0;
  auto expensive = [&message_evals] {
    ++message_evals;
    return std::string("costly");
  };
  RTMAC_ASSERT(true, expensive());
  EXPECT_EQ(message_evals, 0);
}

TEST(CheckHandlerTest, SetHandlerReturnsPreviousHandler) {
  CheckFailureHandler original = set_check_failure_handler(&throwing_handler);
  EXPECT_EQ(set_check_failure_handler(original), &throwing_handler);
}

}  // namespace
}  // namespace rtmac
