// Unit tests for the bump-pointer Arena backing the SoA network state.
#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

namespace rtmac::util {
namespace {

TEST(ArenaTest, MakeSpanValueInitializes) {
  Arena arena;
  const auto ints = arena.make_span<int>(1000);
  ASSERT_EQ(ints.size(), 1000u);
  for (const int v : ints) EXPECT_EQ(v, 0);
  const auto doubles = arena.make_span<double>(64);
  for (const double v : doubles) EXPECT_EQ(v, 0.0);
}

TEST(ArenaTest, SpansAreDisjointAndWritable) {
  Arena arena;
  auto a = arena.make_span<std::uint32_t>(257);
  auto b = arena.make_span<std::uint32_t>(513);
  std::iota(a.begin(), a.end(), 0u);
  std::iota(b.begin(), b.end(), 1000000u);
  // Writes through one span must not alias the other.
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], i);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], 1000000u + i);
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena;
  // Interleave odd sizes with the strongest alignment the arena supports
  // (it caps at alignof(std::max_align_t) by contract); every pointer must
  // satisfy the requested alignment regardless of what preceded it.
  constexpr std::size_t kMaxAlign = alignof(std::max_align_t);
  for (int i = 0; i < 50; ++i) {
    void* odd = arena.allocate(3, 1);
    ASSERT_NE(odd, nullptr);
    std::memset(odd, 0xAB, 3);
    void* aligned = arena.allocate(64, kMaxAlign);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(aligned) % kMaxAlign, 0u);
  }
}

TEST(ArenaTest, AccountsBytesUsed) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  (void)arena.make_span<std::uint64_t>(100);
  EXPECT_EQ(arena.bytes_used(), 800u);
  (void)arena.allocate(10, 1);
  EXPECT_EQ(arena.bytes_used(), 810u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(ArenaTest, WellEstimatedReserveTakesOneChunk) {
  Arena arena{1 << 16};
  const std::size_t reserved_before = arena.bytes_reserved();
  for (int i = 0; i < 64; ++i) (void)arena.make_span<std::uint64_t>(100);
  // Everything fit the pre-sized first chunk: no growth.
  EXPECT_EQ(arena.bytes_reserved(), reserved_before);
}

TEST(ArenaTest, GrowsPastTheFirstChunk) {
  Arena arena{64};
  std::vector<std::span<std::uint8_t>> spans;
  for (int i = 0; i < 100; ++i) {
    spans.push_back(arena.make_span<std::uint8_t>(1000));
    std::memset(spans.back().data(), i, spans.back().size());
  }
  // Growth must not invalidate earlier slices (chunks are stable, never
  // reallocated — the SoA columns hold raw pointers into them).
  for (int i = 0; i < 100; ++i) {
    for (const std::uint8_t v : spans[static_cast<std::size_t>(i)]) {
      ASSERT_EQ(v, static_cast<std::uint8_t>(i));
    }
  }
  EXPECT_EQ(arena.bytes_used(), 100000u);
}

TEST(ArenaTest, OversizedSingleRequestIsServed) {
  Arena arena{16};
  const auto big = arena.make_span<std::uint64_t>(1 << 16);
  ASSERT_EQ(big.size(), static_cast<std::size_t>(1 << 16));
  big[0] = 1;
  big[big.size() - 1] = 2;
  EXPECT_EQ(big[0], 1u);
  EXPECT_EQ(big[big.size() - 1], 2u);
}

TEST(ArenaTest, ZeroCountSpanIsEmpty) {
  Arena arena;
  EXPECT_TRUE(arena.make_span<int>(0).empty());
  EXPECT_EQ(arena.bytes_used(), 0u);
}

}  // namespace
}  // namespace rtmac::util
