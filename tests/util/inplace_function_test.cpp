#include "util/inplace_function.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>

namespace rtmac::util {
namespace {

TEST(InplaceFunctionTest, DefaultConstructedIsEmpty) {
  InplaceFunction<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InplaceFunctionTest, NullptrConstructedIsEmpty) {
  InplaceFunction<void()> f = nullptr;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InplaceFunctionTest, InvokesCallable) {
  int hits = 0;
  InplaceFunction<void()> f = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFunctionTest, ForwardsArgumentsAndReturnsValue) {
  InplaceFunction<int(int, int)> f = [](int a, int b) { return a * 10 + b; };
  EXPECT_EQ(f(3, 4), 34);
}

TEST(InplaceFunctionTest, MoveTransfersCallableAndEmptiesSource) {
  int hits = 0;
  InplaceFunction<void()> a = [&hits] { ++hits; };
  InplaceFunction<void()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move) testing moved-from state
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InplaceFunctionTest, MoveAssignDestroysPreviousTarget) {
  int destroyed = 0;
  struct CountsDestruction {
    int* counter;
    bool armed = true;
    CountsDestruction(int* c) : counter{c} {}
    CountsDestruction(CountsDestruction&& other) noexcept
        : counter{other.counter}, armed{std::exchange(other.armed, false)} {}
    ~CountsDestruction() {
      if (armed) ++*counter;
    }
    void operator()() {}
  };
  InplaceFunction<void()> target = CountsDestruction{&destroyed};
  EXPECT_EQ(destroyed, 0);
  target = InplaceFunction<void()>{[] {}};
  EXPECT_EQ(destroyed, 1);  // the old callable was destroyed exactly once
  target = nullptr;
  EXPECT_EQ(destroyed, 1);
}

TEST(InplaceFunctionTest, OverwriteReplacesBehaviour) {
  int value = 0;
  InplaceFunction<void()> f = [&value] { value = 1; };
  f = [&value] { value = 2; };
  f();
  EXPECT_EQ(value, 2);
}

TEST(InplaceFunctionTest, NullptrAssignmentEmpties) {
  InplaceFunction<void()> f = [] {};
  EXPECT_TRUE(static_cast<bool>(f));
  f = nullptr;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InplaceFunctionTest, HoldsMoveOnlyCallable) {
  // A unique_ptr capture is move-only: std::function could never hold this.
  auto owned = std::make_unique<int>(41);
  InplaceFunction<int()> f = [p = std::move(owned)] { return *p + 1; };
  EXPECT_EQ(f(), 42);
  InplaceFunction<int()> g = std::move(f);
  EXPECT_EQ(g(), 42);
}

TEST(InplaceFunctionTest, CaptureOfExactlyCapacityBytesFits) {
  // A capture payload of exactly the inline capacity must compile and work;
  // one byte more is a static_assert (compile-time, not testable here).
  struct Payload {
    unsigned char bytes[kInplaceFunctionDefaultCapacity - sizeof(void*)];
  };
  Payload p{};
  p.bytes[0] = 7;
  InplaceFunction<int()> f = [p, q = static_cast<void*>(nullptr)] {
    (void)q;
    return static_cast<int>(p.bytes[0]);
  };
  static_assert(sizeof(Payload) + sizeof(void*) == kInplaceFunctionDefaultCapacity);
  EXPECT_EQ(f(), 7);
}

TEST(InplaceFunctionTest, DestructorRunsOnScopeExit) {
  auto shared = std::make_shared<int>(0);
  EXPECT_EQ(shared.use_count(), 1);
  {
    InplaceFunction<void()> f = [shared] {};
    EXPECT_EQ(shared.use_count(), 2);
  }
  EXPECT_EQ(shared.use_count(), 1);
}

TEST(InplaceFunctionTest, SelfMoveAssignIsSafe) {
  int hits = 0;
  InplaceFunction<void()> f = [&hits] { ++hits; };
  InplaceFunction<void()>& alias = f;
  f = std::move(alias);
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(hits, 1);
}

// The engine moves callbacks while restructuring storage; the wrapper itself
// must be nothrow-movable and fixed-size regardless of the callable.
static_assert(std::is_nothrow_move_constructible_v<InplaceFunction<void()>>);
static_assert(std::is_nothrow_move_assignable_v<InplaceFunction<void()>>);
static_assert(!std::is_copy_constructible_v<InplaceFunction<void()>>);
static_assert(!std::is_copy_assignable_v<InplaceFunction<void()>>);

}  // namespace
}  // namespace rtmac::util
