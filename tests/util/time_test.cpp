#include "util/time.hpp"

#include <gtest/gtest.h>

namespace rtmac {
namespace {

TEST(DurationTest, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::milliseconds(20).ns(), 20'000'000);
  EXPECT_EQ(Duration::microseconds(330).ns(), 330'000);
  EXPECT_EQ(Duration::nanoseconds(7).ns(), 7);
}

TEST(DurationTest, FractionalFactoriesRound) {
  EXPECT_EQ(Duration::from_us_f(0.5).ns(), 500);
  EXPECT_EQ(Duration::from_us_f(9.0).ns(), 9'000);
  EXPECT_EQ(Duration::from_seconds_f(1e-9).ns(), 1);
  EXPECT_EQ(Duration::from_seconds_f(0.1).ns(), 100'000'000);
}

TEST(DurationTest, ArithmeticIsClosed) {
  const Duration a = Duration::microseconds(330);
  const Duration b = Duration::microseconds(70);
  EXPECT_EQ((a + b).ns(), 400'000);
  EXPECT_EQ((a - b).ns(), 260'000);
  EXPECT_EQ((a * 3).ns(), 990'000);
  EXPECT_EQ((3 * a).ns(), 990'000);
  EXPECT_EQ((-a).ns(), -330'000);
}

TEST(DurationTest, CompoundAssignment) {
  Duration d = Duration::microseconds(10);
  d += Duration::microseconds(5);
  EXPECT_EQ(d.ns(), 15'000);
  d -= Duration::microseconds(20);
  EXPECT_EQ(d.ns(), -5'000);
  EXPECT_TRUE(d.is_negative());
}

TEST(DurationTest, Ordering) {
  EXPECT_LT(Duration::microseconds(9), Duration::microseconds(10));
  EXPECT_GT(Duration::milliseconds(1), Duration::microseconds(999));
  EXPECT_EQ(Duration::milliseconds(1), Duration::microseconds(1000));
}

TEST(DurationTest, FloorDivCountsWholeUnits) {
  const Duration deadline = Duration::milliseconds(20);
  const Duration airtime = Duration::microseconds(330);
  EXPECT_EQ(deadline.floor_div(airtime), 60);  // the paper's 60 tx/interval
  EXPECT_EQ(Duration::milliseconds(2).floor_div(Duration::microseconds(120)), 16);
  EXPECT_EQ(Duration::microseconds(100).floor_div(Duration::microseconds(100)), 1);
  EXPECT_EQ(Duration::microseconds(99).floor_div(Duration::microseconds(100)), 0);
}

TEST(DurationTest, FloorDivNegativeRoundsDown) {
  EXPECT_EQ(Duration::microseconds(-1).floor_div(Duration::microseconds(100)), -1);
  EXPECT_EQ(Duration::microseconds(-100).floor_div(Duration::microseconds(100)), -1);
  EXPECT_EQ(Duration::microseconds(-101).floor_div(Duration::microseconds(100)), -2);
}

TEST(DurationTest, ToStringPicksAdaptiveUnit) {
  EXPECT_EQ(Duration::seconds(2).to_string(), "2s");
  EXPECT_EQ(Duration::milliseconds(20).to_string(), "20ms");
  EXPECT_EQ(Duration::microseconds(330).to_string(), "330us");
  EXPECT_EQ(Duration::nanoseconds(12).to_string(), "12ns");
  EXPECT_EQ(Duration::nanoseconds(1500).to_string(), "1500ns");
}

TEST(TimePointTest, AffineArithmetic) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + Duration::milliseconds(20);
  EXPECT_EQ((t1 - t0).ns(), 20'000'000);
  EXPECT_EQ((t1 - Duration::milliseconds(20)), t0);
  TimePoint t = t0;
  t += Duration::seconds(1);
  EXPECT_EQ(t.ns(), 1'000'000'000);
}

TEST(TimePointTest, Ordering) {
  const TimePoint a = TimePoint::from_ns(5);
  const TimePoint b = TimePoint::from_ns(6);
  EXPECT_LT(a, b);
  EXPECT_GE(b, a);
  EXPECT_EQ(a, TimePoint::from_ns(5));
}

TEST(TimePointTest, SecondsConversion) {
  EXPECT_DOUBLE_EQ((TimePoint::origin() + Duration::milliseconds(1500)).seconds_f(), 1.5);
}

}  // namespace
}  // namespace rtmac
