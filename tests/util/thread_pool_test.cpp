#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rtmac {
namespace {

TEST(ThreadPoolTest, ZeroThreadsThrows) {
  EXPECT_THROW(ThreadPool{0}, std::invalid_argument);
}

TEST(ThreadPoolTest, ReportsSizeAndHardwareFloor) {
  ThreadPool pool{3};
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsTaskResults) {
  ThreadPool pool{4};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 100; ++i) {
      (void)pool.submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool{2};
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error{"boom"}; });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolTest, NestedWaitDoesNotDeadlockOnSingleThread) {
  // A task that fans out subtasks and waits for them must not deadlock
  // even when it occupies the pool's only worker: wait_all lends the
  // blocked thread back to the queue.
  ThreadPool pool{1};
  auto outer = pool.submit([&pool] {
    std::vector<std::future<int>> inner;
    for (int i = 0; i < 8; ++i) inner.push_back(pool.submit([i] { return i; }));
    pool.wait_all(inner);
    int sum = 0;
    for (auto& f : inner) sum += f.get();
    return sum;
  });
  EXPECT_EQ(outer.get(), 28);
}

TEST(ThreadPoolTest, WaitAllFromOwnerThreadHelpsExecute) {
  ThreadPool pool{1};
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 256; ++i) {
    futures.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  }
  pool.wait_all(futures);
  EXPECT_EQ(ran.load(), 256);
  for (auto& f : futures) f.get();  // none may hold an exception
}

TEST(ThreadPoolTest, ManyConcurrentSubmittersStress) {
  ThreadPool pool{4};
  std::atomic<long> total{0};
  std::vector<std::future<void>> futures;
  futures.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&total, i] { total.fetch_add(i); }));
  }
  pool.wait_all(futures);
  EXPECT_EQ(total.load(), 999L * 1000 / 2);
}

}  // namespace
}  // namespace rtmac
