// Stress tests for the help-executing ThreadPool. This is the suite the TSan
// CI lane runs hot: every test hammers the submit/wait paths from multiple
// threads at once so data races in the queue, the nested-wait help loop, or
// the shutdown path surface as sanitizer reports rather than rare flakes.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "expfw/runner.hpp"
#include "util/rng.hpp"

namespace rtmac {
namespace {

// Deterministic stand-in for a sweep cell: hash-mix the slot index a few
// thousand times. Heavy enough to overlap tasks, cheap enough to run
// thousands of them under TSan.
std::uint64_t burn(std::uint64_t slot) {
  std::uint64_t h = mix64(slot, slot + 1);
  for (int i = 0; i < 2000; ++i) h = mix64(h, slot);
  return h;
}

TEST(ThreadPoolStress, ManyPoolsManyTasksMatchSerialReference) {
  // Pool construction/destruction itself races against worker startup if the
  // shutdown path is wrong, so cycle whole pools, not just tasks.
  constexpr std::size_t kTasks = 256;
  std::vector<std::uint64_t> reference(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) reference[i] = burn(i);

  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    for (int round = 0; round < 3; ++round) {
      ThreadPool pool(threads);
      std::vector<std::uint64_t> results(kTasks, 0);
      std::vector<std::future<void>> futures;
      futures.reserve(kTasks);
      for (std::size_t i = 0; i < kTasks; ++i) {
        futures.push_back(pool.submit([i, &results] { results[i] = burn(i); }));
      }
      pool.wait_all(futures);
      EXPECT_EQ(results, reference) << "threads=" << threads << " round=" << round;
    }
  }
}

TEST(ThreadPoolStress, SweepSeedsAreScheduleIndependent) {
  // The property the whole parallel sweep engine rests on: per-cell seeds
  // depend only on (base, scheme, x, rep), never on which worker ran the cell
  // or in what order. Compute the full seed grid serially, then in parallel
  // with results written to pre-assigned slots, and require equality.
  constexpr std::uint64_t kBase = 0x9e3779b97f4a7c15ull;
  const std::vector<std::string> schemes = {"dp", "db-dp", "fcsma", "dcf"};
  constexpr std::size_t kXs = 16;
  constexpr std::size_t kReps = 8;

  std::vector<std::uint64_t> serial;
  serial.reserve(schemes.size() * kXs * kReps);
  for (const auto& scheme : schemes) {
    for (std::size_t x = 0; x < kXs; ++x) {
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        serial.push_back(expfw::sweep_seed(kBase, scheme, x, rep));
      }
    }
  }

  ThreadPool pool(4);
  std::vector<std::uint64_t> parallel(serial.size(), 0);
  std::vector<std::future<void>> futures;
  futures.reserve(serial.size());
  std::size_t slot = 0;
  for (const auto& scheme : schemes) {
    for (std::size_t x = 0; x < kXs; ++x) {
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        futures.push_back(pool.submit([&parallel, slot, &scheme, x, rep] {
          parallel[slot] = expfw::sweep_seed(kBase, scheme, x, rep);
        }));
        ++slot;
      }
    }
  }
  pool.wait_all(futures);
  EXPECT_EQ(parallel, serial);
}

TEST(ThreadPoolStress, NestedSubmitAndWaitFromPoolThreadsDoesNotDeadlock) {
  // Tasks that themselves fan out and wait — the shape the figure sweeps use
  // (scheme task -> per-rep subtasks). With help-execution this must complete
  // even when every worker is blocked inside a nested wait_all.
  for (std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kOuter = 12;
    constexpr std::size_t kInner = 24;
    std::vector<std::future<std::uint64_t>> outer;
    outer.reserve(kOuter);
    for (std::size_t o = 0; o < kOuter; ++o) {
      outer.push_back(pool.submit([o, &pool] {
        std::vector<std::future<std::uint64_t>> inner;
        inner.reserve(kInner);
        for (std::size_t i = 0; i < kInner; ++i) {
          inner.push_back(pool.submit([o, i] { return burn(o * 1000 + i); }));
        }
        pool.wait_all(inner);
        std::uint64_t acc = 0;
        for (auto& f : inner) acc ^= f.get();
        return acc;
      }));
    }
    pool.wait_all(outer);
    for (std::size_t o = 0; o < kOuter; ++o) {
      std::uint64_t expected = 0;
      for (std::size_t i = 0; i < kInner; ++i) expected ^= burn(o * 1000 + i);
      EXPECT_EQ(outer[o].get(), expected) << "threads=" << threads << " o=" << o;
    }
  }
}

TEST(ThreadPoolStress, ExceptionsPropagateUnderContention) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 200;
  std::vector<std::future<std::uint64_t>> futures;
  futures.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i]() -> std::uint64_t {
      if (i % 7 == 3) throw std::runtime_error("task " + std::to_string(i));
      return burn(i);
    }));
  }
  pool.wait_all(futures);
  for (std::size_t i = 0; i < kTasks; ++i) {
    if (i % 7 == 3) {
      EXPECT_THROW(futures[i].get(), std::runtime_error) << i;
    } else {
      EXPECT_EQ(futures[i].get(), burn(i)) << i;
    }
  }
}

TEST(ThreadPoolStress, DestructorDrainsEverySubmittedTask) {
  // The destructor contract: every task already submitted runs before join.
  // Submit from several external threads racing the pool's destruction.
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kPerSubmitter = 64;
  std::atomic<std::uint64_t> executed{0};
  {
    ThreadPool pool(2);
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (std::size_t s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&pool, &executed] {
        for (std::size_t i = 0; i < kPerSubmitter; ++i) {
          pool.submit([&executed, i] {
            burn(i);
            executed.fetch_add(1, std::memory_order_relaxed);
          });
        }
      });
    }
    for (auto& t : submitters) t.join();
    // Pool destructor runs here and must drain the queue.
  }
  EXPECT_EQ(executed.load(), kSubmitters * kPerSubmitter);
}

TEST(ThreadPoolStress, WaitUntilHelpsFromManyThreadsAtOnce) {
  // Several external threads all help-execute against one pool while it is
  // also running its own workers — the maximum-contention shape for run_one().
  ThreadPool pool(2);
  constexpr std::size_t kTasks = 512;
  std::atomic<std::size_t> done{0};
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.submit([&done, i] {
      burn(i);
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::vector<std::thread> helpers;
  for (std::size_t h = 0; h < 3; ++h) {
    helpers.emplace_back(
        [&pool, &done] { pool.wait_until([&done] { return done.load() == kTasks; }); });
  }
  pool.wait_until([&done] { return done.load() == kTasks; });
  for (auto& t : helpers) t.join();
  EXPECT_EQ(done.load(), kTasks);
}

}  // namespace
}  // namespace rtmac
