#include "traffic/joint_arrivals.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "util/math.hpp"

namespace rtmac::traffic {
namespace {

TEST(IndependentArrivalsTest, MatchesMarginals) {
  std::vector<std::unique_ptr<ArrivalProcess>> marginals;
  marginals.push_back(std::make_unique<BernoulliArrivals>(0.3));
  marginals.push_back(std::make_unique<ConstantArrivals>(2));
  IndependentArrivals joint{std::move(marginals)};
  EXPECT_EQ(joint.num_links(), 2u);
  EXPECT_EQ(joint.mean(), (RateVector{0.3, 2.0}));
  Rng rng{4};
  for (int i = 0; i < 1000; ++i) {
    const auto a = joint.sample(rng);
    EXPECT_LE(a[0], 1);
    EXPECT_EQ(a[1], 2);
  }
}

TEST(IndependentArrivalsTest, CloneIsDeep) {
  std::vector<std::unique_ptr<ArrivalProcess>> marginals;
  marginals.push_back(std::make_unique<BernoulliArrivals>(0.5));
  IndependentArrivals joint{std::move(marginals)};
  const auto copy = joint.clone();
  EXPECT_EQ(copy->mean(), joint.mean());
  Rng r1{9};
  Rng r2{9};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(joint.sample(r1), copy->sample(r2));
}

TEST(CommonShockTest, MarginalMeanUnchangedByShock) {
  for (double shock : {0.0, 0.2, 0.4, 0.55}) {
    CommonShockBurstyArrivals joint{10, 0.55, shock};
    for (double m : joint.mean()) EXPECT_NEAR(m, 3.5 * 0.55, 1e-12);
  }
}

TEST(CommonShockTest, EmpiricalMarginalMatches) {
  CommonShockBurstyArrivals joint{4, 0.5, 0.3};
  Rng rng{17};
  std::vector<double> sums(4, 0.0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const auto a = joint.sample(rng);
    for (int n = 0; n < 4; ++n) sums[static_cast<std::size_t>(n)] += a[static_cast<std::size_t>(n)];
  }
  for (double s : sums) EXPECT_NEAR(s / kN, 3.5 * 0.5, 0.05);
}

TEST(CommonShockTest, ShockInducesPositiveCorrelation) {
  // Covariance of burst indicators across two links must grow with shock.
  auto burst_covariance = [](double shock) {
    CommonShockBurstyArrivals joint{2, 0.5, shock};
    Rng rng{23};
    double b0 = 0.0;
    double b1 = 0.0;
    double b01 = 0.0;
    constexpr int kN = 200000;
    for (int i = 0; i < kN; ++i) {
      const auto a = joint.sample(rng);
      const double x = a[0] > 0 ? 1.0 : 0.0;
      const double y = a[1] > 0 ? 1.0 : 0.0;
      b0 += x;
      b1 += y;
      b01 += x * y;
    }
    return b01 / kN - (b0 / kN) * (b1 / kN);
  };
  const double none = burst_covariance(0.0);
  const double some = burst_covariance(0.25);
  const double full = burst_covariance(0.5);
  EXPECT_NEAR(none, 0.0, 0.01);
  EXPECT_GT(some, none + 0.02);
  EXPECT_GT(full, some + 0.02);
}

TEST(CommonShockTest, FullShockSynchronizesBursts) {
  CommonShockBurstyArrivals joint{5, 0.5, 0.5};
  Rng rng{3};
  for (int i = 0; i < 2000; ++i) {
    const auto a = joint.sample(rng);
    const bool any = std::any_of(a.begin(), a.end(), [](int v) { return v > 0; });
    const bool all = std::all_of(a.begin(), a.end(), [](int v) { return v > 0; });
    EXPECT_EQ(any, all) << "with shock == alpha bursts must be all-or-nothing";
  }
}

TEST(CommonShockTest, NetworkAcceptsJointTraffic) {
  // Shock strength must respect capacity: a synchronized burst demands
  // ~20*3.5/0.7 = 100 transmissions against 60 slots, so each shock interval
  // inevitably drops ~1.4 packets/link. With rho = 0.9 the per-link slack is
  // 3.5*alpha*0.1 = 0.14, so shocks up to ~10% of intervals stay feasible.
  auto cfg = expfw::video_symmetric(0.4, 0.9, 9);
  cfg.arrivals.clear();
  cfg.joint_arrivals = std::make_unique<CommonShockBurstyArrivals>(20, 0.4, 0.05);
  std::string error;
  ASSERT_TRUE(cfg.validate(&error)) << error;
  net::Network net{std::move(cfg), expfw::dbdp_factory()};
  net.run(1500);
  EXPECT_LT(net.total_deficiency(), 0.3);
}

TEST(CommonShockTest, ExcessiveShockIsInfeasibleForEveryPolicy) {
  // The converse: synchronizing 30% of intervals exceeds capacity and even
  // the centralized genie cannot fulfil the requirement.
  auto cfg = expfw::video_symmetric(0.4, 0.9, 9);
  cfg.arrivals.clear();
  cfg.joint_arrivals = std::make_unique<CommonShockBurstyArrivals>(20, 0.4, 0.3);
  net::Network net{std::move(cfg), expfw::ldf_factory()};
  net.run(600);
  EXPECT_GT(net.total_deficiency(), 1.0);
}

TEST(CommonShockTest, ValidationRejectsMeanMismatch) {
  auto cfg = expfw::video_symmetric(0.4, 0.9, 9);
  cfg.arrivals.clear();
  cfg.joint_arrivals = std::make_unique<CommonShockBurstyArrivals>(20, 0.5, 0.1);
  EXPECT_FALSE(cfg.validate());
}

TEST(CommonShockTest, ValidationRejectsSizeMismatch) {
  auto cfg = expfw::video_symmetric(0.4, 0.9, 9);
  cfg.arrivals.clear();
  cfg.joint_arrivals = std::make_unique<CommonShockBurstyArrivals>(7, 0.4, 0.1);
  EXPECT_FALSE(cfg.validate());
}

}  // namespace
}  // namespace rtmac::traffic
