#include "traffic/arrival_process.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace rtmac::traffic {
namespace {

double empirical_mean(const ArrivalProcess& proc, int samples, std::uint64_t seed) {
  Rng rng{seed};
  double total = 0.0;
  for (int i = 0; i < samples; ++i) total += proc.sample(rng);
  return total / samples;
}

double pmf_sum(const ArrivalProcess& proc) {
  const auto pmf = proc.pmf();
  return std::accumulate(pmf.begin(), pmf.end(), 0.0);
}

double pmf_mean(const ArrivalProcess& proc) {
  const auto pmf = proc.pmf();
  double m = 0.0;
  for (std::size_t v = 0; v < pmf.size(); ++v) m += static_cast<double>(v) * pmf[v];
  return m;
}

// ---- Bernoulli --------------------------------------------------------------

TEST(BernoulliArrivalsTest, MeanAndSupport) {
  const BernoulliArrivals a{0.78};
  EXPECT_DOUBLE_EQ(a.mean(), 0.78);
  EXPECT_EQ(a.max_arrivals(), 1);
}

TEST(BernoulliArrivalsTest, PmfIsConsistent) {
  const BernoulliArrivals a{0.3};
  const auto pmf = a.pmf();
  ASSERT_EQ(pmf.size(), 2u);
  EXPECT_DOUBLE_EQ(pmf[0], 0.7);
  EXPECT_DOUBLE_EQ(pmf[1], 0.3);
  EXPECT_NEAR(pmf_mean(a), a.mean(), 1e-12);
}

TEST(BernoulliArrivalsTest, SamplesMatchMean) {
  const BernoulliArrivals a{0.78};
  EXPECT_NEAR(empirical_mean(a, 50000, 11), 0.78, 0.01);
}

TEST(BernoulliArrivalsTest, DegenerateProbabilities) {
  Rng rng{1};
  const BernoulliArrivals zero{0.0};
  const BernoulliArrivals one{1.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zero.sample(rng), 0);
    EXPECT_EQ(one.sample(rng), 1);
  }
}

// ---- UniformBursty ----------------------------------------------------------

TEST(UniformBurstyTest, PaperVideoModelMean) {
  // Paper: U{1..6} w.p. alpha, else 0 => lambda = 3.5 alpha.
  const UniformBurstyArrivals a{0.55};
  EXPECT_DOUBLE_EQ(a.mean(), 3.5 * 0.55);
  EXPECT_EQ(a.max_arrivals(), 6);
}

TEST(UniformBurstyTest, PmfSumsToOneAndMatchesMean) {
  const UniformBurstyArrivals a{0.6};
  EXPECT_NEAR(pmf_sum(a), 1.0, 1e-12);
  EXPECT_NEAR(pmf_mean(a), a.mean(), 1e-12);
  const auto pmf = a.pmf();
  EXPECT_NEAR(pmf[0], 0.4, 1e-12);
  for (int v = 1; v <= 6; ++v) EXPECT_NEAR(pmf[static_cast<std::size_t>(v)], 0.1, 1e-12);
}

TEST(UniformBurstyTest, SamplesWithinSupport) {
  const UniformBurstyArrivals a{0.5};
  Rng rng{9};
  for (int i = 0; i < 10000; ++i) {
    const int v = a.sample(rng);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 6);
    EXPECT_TRUE(v == 0 || v >= 1);
  }
}

TEST(UniformBurstyTest, SamplesMatchMean) {
  const UniformBurstyArrivals a{0.55};
  EXPECT_NEAR(empirical_mean(a, 100000, 13), 3.5 * 0.55, 0.03);
}

TEST(UniformBurstyTest, CustomRange) {
  const UniformBurstyArrivals a{1.0, 2, 4};
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    const int v = a.sample(rng);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 4);
  }
}

TEST(UniformBurstyTest, AlphaZeroNeverArrives) {
  const UniformBurstyArrivals a{0.0};
  Rng rng{3};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.sample(rng), 0);
}

// ---- Constant ---------------------------------------------------------------

TEST(ConstantArrivalsTest, AlwaysSameValue) {
  const ConstantArrivals a{3};
  Rng rng{1};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.sample(rng), 3);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_EQ(a.max_arrivals(), 3);
  const auto pmf = a.pmf();
  ASSERT_EQ(pmf.size(), 4u);
  EXPECT_DOUBLE_EQ(pmf[3], 1.0);
}

TEST(ConstantArrivalsTest, ZeroPackets) {
  const ConstantArrivals a{0};
  Rng rng{1};
  EXPECT_EQ(a.sample(rng), 0);
  EXPECT_EQ(a.pmf(), (std::vector<double>{1.0}));
}

// ---- GeneralDiscrete --------------------------------------------------------

TEST(GeneralDiscreteTest, NormalizesInput) {
  const GeneralDiscreteArrivals a{{2.0, 2.0}};
  const auto pmf = a.pmf();
  EXPECT_DOUBLE_EQ(pmf[0], 0.5);
  EXPECT_DOUBLE_EQ(pmf[1], 0.5);
  EXPECT_DOUBLE_EQ(a.mean(), 0.5);
}

TEST(GeneralDiscreteTest, SamplesMatchPmf) {
  const GeneralDiscreteArrivals a{{0.2, 0.3, 0.5}};
  Rng rng{77};
  std::vector<int> counts(3, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) counts[static_cast<std::size_t>(a.sample(rng))]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.2, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.5, 0.01);
}

TEST(GeneralDiscreteTest, ZeroMassValuesNeverSampled) {
  const GeneralDiscreteArrivals a{{0.0, 1.0, 0.0}};
  Rng rng{4};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.sample(rng), 1);
}

// ---- clone ------------------------------------------------------------------

TEST(ArrivalProcessTest, ClonePreservesBehaviour) {
  const UniformBurstyArrivals original{0.55};
  const auto copy = original.clone();
  EXPECT_DOUBLE_EQ(copy->mean(), original.mean());
  EXPECT_EQ(copy->max_arrivals(), original.max_arrivals());
  EXPECT_EQ(copy->pmf(), original.pmf());
  // Clones sample identically under identical RNG state.
  Rng r1{21};
  Rng r2{21};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(original.sample(r1), copy->sample(r2));
}

}  // namespace
}  // namespace rtmac::traffic
