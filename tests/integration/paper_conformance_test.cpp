// Paper-conformance suite: one test per numbered equation / definition /
// remark of the paper, asserting this implementation realizes it exactly.
// Complements the behavioural tests: here the mapping paper -> code is the
// point, so each test names its clause.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "analysis/priority_chain.hpp"
#include "core/debt.hpp"
#include "core/influence.hpp"
#include "core/mu.hpp"
#include "core/permutation.hpp"
#include "expfw/scenarios.hpp"
#include "helpers/scheme_harness.hpp"
#include "mac/centralized_scheduler.hpp"
#include "mac/dp_link_mac.hpp"
#include "mac/priority_provider.hpp"
#include "net/network.hpp"
#include "stats/deficiency.hpp"
#include "traffic/arrival_process.hpp"
#include "util/math.hpp"

namespace rtmac {
namespace {

// ---- Section II -------------------------------------------------------------

TEST(PaperConformance, SectionIIB_PacketsDroppedAtIntervalEnd) {
  // "The packets that are not delivered before their deadlines are dropped."
  test::SchemeHarness h{ProbabilityVector(1, 1.0), phy::PhyParams::video_80211a(),
                        Duration::microseconds(700), RateVector(1, 0.5)};
  const auto ctx = h.context();
  mac::CentralizedScheme ldf{ctx, mac::CentralizedParams{}, "LDF"};
  // 5 packets, 2 slots: 2 delivered, 3 dropped — the NEXT interval starts
  // from the new arrivals only.
  EXPECT_EQ(h.run_interval(ldf, {5})[0], 2);
  EXPECT_EQ(h.run_interval(ldf, {1})[0], 1);  // no leftover backlog served
}

TEST(PaperConformance, SectionIIC_TimelyThroughputEqualsDeliveryRatioForUnitArrivals) {
  // "when there is exactly one packet arrival in each interval ...
  //  timely-throughput is exactly the same as delivery ratio."
  stats::LinkStatsCollector stats{1};
  for (int k = 0; k < 10; ++k) stats.record({1}, {k % 2});
  EXPECT_DOUBLE_EQ(stats.timely_throughput(0), stats.delivery_ratio(0));
}

TEST(PaperConformance, Definition1_DeficiencyIsPositivePartOfGap) {
  stats::LinkStatsCollector stats{2};
  stats.record({1, 1}, {1, 0});
  const RateVector q{0.2, 0.7};
  // Link 0 over-delivers (gap negative -> 0); link 1 lags by 0.7.
  const auto def = stats::per_link_deficiency(stats, q);
  EXPECT_DOUBLE_EQ(def[0], 0.0);
  EXPECT_DOUBLE_EQ(def[1], 0.7);
}

// ---- Section III ------------------------------------------------------------

TEST(PaperConformance, Equation1_DebtRecursion) {
  // d_n(k+1) = d_n(k) - S_n(k) + q_n, d_n(0) = 0.
  core::DebtTracker d{{0.37}};
  double expected = 0.0;
  for (int s : {0, 1, 0, 2, 1}) {
    d.on_interval_end({s});
    expected = expected - s + 0.37;
    EXPECT_NEAR(d.debt(0), expected, 1e-12);
  }
}

TEST(PaperConformance, Definition6_ValidAndInvalidInfluenceFunctions) {
  // "f(x) = x^m with m >= 0 and f(x) = log_a x with a > 1 are valid ...
  //  f(x) = a^x with a > 1 is not."
  EXPECT_TRUE(core::check_influence_axioms(core::Influence::power(2.0)).all());
  EXPECT_TRUE(core::check_influence_axioms(core::Influence::log(10.0)).all());
  const core::Influence expo{"1.01^x", [](double x) { return std::pow(1.01, x); }};
  EXPECT_FALSE(core::check_influence_axioms(expo, /*x_max=*/1e5).shift_insensitive);
}

TEST(PaperConformance, Equation4_EldfSortsByInfluenceTimesReliability) {
  // Ordering by f(d^+) p, descending.
  test::SchemeHarness h{{0.9, 0.6, 0.3}, phy::PhyParams::video_80211a(),
                        Duration::milliseconds(20), {0.5, 0.5, 0.5}};
  const auto ctx = h.context();
  mac::CentralizedScheme eldf{ctx, mac::CentralizedParams{core::Influence::identity()},
                              "ELDF"};
  // Equal debts 0.5 each: weights d*p = (.45, .30, .15) -> sorted by p.
  h.debts().on_interval_end({0, 0, 0});
  h.run_interval(eldf, {1, 1, 1});
  EXPECT_EQ(eldf.current_ordering(), (std::vector<LinkId>{0, 1, 2}));
}

TEST(PaperConformance, Remark2_EldfWithIdentityInfluenceIsLdf) {
  // "By choosing f(x) = x, the ELDF policy becomes equivalent to LDF."
  auto run_ordering = [](const core::Influence& f) {
    test::SchemeHarness h{{0.7, 0.7}, phy::PhyParams::video_80211a(),
                          Duration::milliseconds(20), {0.9, 0.9}};
    const auto ctx = h.context();
    mac::CentralizedScheme s{ctx, mac::CentralizedParams{f}, "S"};
    h.debts().on_interval_end({0, 1});
    h.run_interval(s, {1, 1});
    return s.current_ordering();
  };
  EXPECT_EQ(run_ordering(core::Influence::identity()),
            (std::vector<LinkId>{0, 1}));  // largest debt (link 0) first
}

// ---- Section IV (Algorithm 2) ------------------------------------------------

TEST(PaperConformance, Step1_CandidateUniformOnOneToNMinusOne) {
  const mac::SharedSeed seed{12345};
  std::vector<int> hits(20, 0);
  constexpr int kK = 200000;
  for (IntervalIndex k = 0; k < kK; ++k) hits[seed.candidate(k, 20)]++;
  for (PriorityIndex m = 1; m <= 19; ++m) {
    EXPECT_NEAR(hits[m] / static_cast<double>(kK), 1.0 / 19.0, 0.005) << m;
  }
}

TEST(PaperConformance, Equation6_BackoffAssignments) {
  // sigma < C: beta = sigma-1; sigma > C+1: beta = sigma+1;
  // candidates: beta = sigma - xi.
  const std::vector<PriorityIndex> pairs{4};  // C = 4
  EXPECT_EQ(mac::dp_backoff_count(1, pairs, 0), 0);
  EXPECT_EQ(mac::dp_backoff_count(3, pairs, 0), 2);
  EXPECT_EQ(mac::dp_backoff_count(4, pairs, +1), 3);
  EXPECT_EQ(mac::dp_backoff_count(4, pairs, -1), 5);
  EXPECT_EQ(mac::dp_backoff_count(5, pairs, +1), 4);
  EXPECT_EQ(mac::dp_backoff_count(5, pairs, -1), 6);
  EXPECT_EQ(mac::dp_backoff_count(6, pairs, 0), 7);
  EXPECT_EQ(mac::dp_backoff_count(8, pairs, 0), 9);
}

TEST(PaperConformance, Example2_PriorityExchangeViaBackoff) {
  // "Suppose sigma(1) = [1,2,3,4] and sigma(2) = [1,3,2,4] ... link 2 and 3
  //  exchange priorities if beta_2 = 3 and beta_3 = 2."  (1-based links)
  const std::vector<PriorityIndex> pairs{2};  // candidates at priorities 2, 3
  // Paper's link 2 (priority 2, moving down): beta = 2 - (-1) = 3.
  EXPECT_EQ(mac::dp_backoff_count(2, pairs, -1), 3);
  // Paper's link 3 (priority 3, moving up): beta = 3 - 1 = 2.
  EXPECT_EQ(mac::dp_backoff_count(3, pairs, +1), 2);
}

TEST(PaperConformance, SectionIVC_NoControlPacketsOnlyDataAndClaims) {
  // "No control packets or control slots required": the only things ever on
  // the air are data packets and (short) empty claim packets.
  net::Network net{expfw::video_symmetric(0.5, 0.9, 91), expfw::dbdp_factory()};
  sim::Tracer tracer{1 << 20};
  net.attach_tracer(&tracer);
  net.run(100);
  const auto starts = tracer.filter(sim::TraceKind::kTxStart);
  for (const auto& e : starts) {
    const bool is_data = e.b == 0 && e.a == Duration::microseconds(330).ns();
    const bool is_claim = e.b == 1 && e.a == Duration::microseconds(70).ns();
    EXPECT_TRUE(is_data || is_claim) << e.to_string();
  }
}

TEST(PaperConformance, SectionIVC_AtMostTwoEmptyPacketsPerInterval) {
  // Overhead claim: "In each interval, there are at most two empty packets."
  auto cfg = net::symmetric_network(8, Duration::milliseconds(20),
                                    phy::PhyParams::video_80211a(), 0.9,
                                    traffic::BernoulliArrivals{0.2}, 0.5, 92);
  net::Network net{std::move(cfg), expfw::dbdp_factory()};
  std::uint64_t prev_empty = 0;
  net.add_observer([&](IntervalIndex, std::span<const int>, std::span<const int>) {
    const std::uint64_t now_empty = net.medium().counters().empty_tx;
    EXPECT_LE(now_empty - prev_empty, 2u);
    prev_empty = now_empty;
  });
  net.run(500);
}

TEST(PaperConformance, Equation9_TransitionProbabilityStructure) {
  // X[sigma][sigma'] = (1-mu_i) mu_j / (N-1) for adjacent transpositions.
  const std::vector<double> mu{0.2, 0.5, 0.8};
  const analysis::PriorityChain chain{mu};
  const auto id = core::Permutation::identity(3);
  auto swapped = id;
  swapped.swap_adjacent_priorities(2);  // links at priorities 2,3 = links 1,2
  EXPECT_NEAR(chain.transition_matrix()[id.rank()][swapped.rank()],
              (1.0 - mu[1]) * mu[2] / 2.0, 1e-12);
}

TEST(PaperConformance, Equation10_ProductFormStationaryLaw) {
  // pi*(sigma) ∝ prod (mu_n/(1-mu_n))^(N - sigma_n); verify a ratio directly.
  const std::vector<double> mu{0.3, 0.6};
  const analysis::PriorityChain chain{mu};
  const auto pi = chain.stationary_analytic();
  const auto id = core::Permutation::identity(2);
  auto sw = id;
  sw.swap_adjacent_priorities(1);
  // pi(id)/pi(sw) = odds(link0)/odds(link1) (eq. 13 with m = 1).
  const double odds0 = mu[0] / (1.0 - mu[0]);
  const double odds1 = mu[1] / (1.0 - mu[1]);
  EXPECT_NEAR(pi[id.rank()] / pi[sw.rank()], odds0 / odds1, 1e-12);
}

// ---- Section V ----------------------------------------------------------------

TEST(PaperConformance, Equation14_MuFormula) {
  const core::DebtMu m{expfw::paper_influence(), expfw::kPaperR};
  for (double d : {0.0, 0.5, 3.0, 42.0}) {
    for (double p : {0.5, 0.7, 0.8}) {
      const double w = std::log(std::max(1.0, 100.0 * (d + 1.0))) * p;
      EXPECT_NEAR(m.mu(d, p), std::exp(w) / (10.0 + std::exp(w)), 1e-12);
    }
  }
}

TEST(PaperConformance, Equation15_QuasiStationaryLawFromSubstitution) {
  // Substituting eq. (14) into eq. (10) must give eq. (15): already the
  // FixedMuChainMatchesDbdpLawThroughOdds test at N=4; here N=3 with the
  // paper's exact f and R.
  const core::DebtMu formula{expfw::paper_influence(), expfw::kPaperR};
  const std::vector<double> debts{0.0, 2.5, 7.0};
  const ProbabilityVector p{0.7, 0.7, 0.7};
  std::vector<double> mu(3);
  for (std::size_t n = 0; n < 3; ++n) mu[n] = formula.mu(debts[n], p[n]);
  const analysis::PriorityChain chain{mu};
  EXPECT_LT(total_variation(chain.stationary_analytic(),
                            analysis::dbdp_stationary_law(formula, debts, p)),
            1e-9);
}

// ---- Section VI ----------------------------------------------------------------

TEST(PaperConformance, SectionVIA_VideoArrivalModel) {
  // "uniformly distributed within {1,...,6} with probability alpha_n and 0
  //  with probability 1 - alpha_n ... lambda_n = 3.5 alpha_n".
  const traffic::UniformBurstyArrivals a{0.62};
  EXPECT_DOUBLE_EQ(a.mean(), 3.5 * 0.62);
  const auto pmf = a.pmf();
  EXPECT_NEAR(pmf[0], 0.38, 1e-12);
  for (int v = 1; v <= 6; ++v) {
    EXPECT_NEAR(pmf[static_cast<std::size_t>(v)], 0.62 / 6.0, 1e-12);
  }
}

TEST(PaperConformance, SectionVIA_SixtyTransmissionsPerInterval) {
  // "Under LDF, there are up to 60 transmissions in each interval."
  test::SchemeHarness h{ProbabilityVector(20, 1.0), phy::PhyParams::video_80211a(),
                        Duration::milliseconds(20), RateVector(20, 0.9)};
  const auto ctx = h.context();
  mac::CentralizedScheme ldf{ctx, mac::CentralizedParams{}, "LDF"};
  const auto delivered = h.run_interval(ldf, std::vector<int>(20, 6));
  EXPECT_EQ(std::accumulate(delivered.begin(), delivered.end(), 0), 60);
}

TEST(PaperConformance, SectionVIB_SixteenTransmissionsPerControlInterval) {
  // "under LDF there are 16 available transmissions in each interval".
  test::SchemeHarness h{ProbabilityVector(10, 1.0), phy::PhyParams::control_80211a(),
                        Duration::milliseconds(2), RateVector(10, 0.99)};
  const auto ctx = h.context();
  mac::CentralizedScheme ldf{ctx, mac::CentralizedParams{}, "LDF"};
  const auto delivered = h.run_interval(ldf, std::vector<int>(10, 2));
  EXPECT_EQ(std::accumulate(delivered.begin(), delivered.end(), 0), 16);
}

TEST(PaperConformance, SectionVIB_DbdpLosesAtMostTwoTransmissionsToOverhead) {
  // "under the proposed DB-DP algorithm, there might be 1 or 2 fewer
  //  transmissions in each interval due to ... backoff slots and empty
  //  packets" — saturate the network and count data transmissions.
  auto cfg = net::symmetric_network(10, Duration::milliseconds(2),
                                    phy::PhyParams::control_80211a(), 0.9,
                                    traffic::ConstantArrivals{2}, 0.5, 93);
  net::Network net{std::move(cfg), expfw::dbdp_factory()};
  constexpr IntervalIndex kIntervals = 300;
  net.run(kIntervals);
  const double tx_per_interval =
      static_cast<double>(net.medium().counters().data_tx) / kIntervals;
  EXPECT_GE(tx_per_interval, 14.0);
  EXPECT_LE(tx_per_interval, 16.0);
}

}  // namespace
}  // namespace rtmac
