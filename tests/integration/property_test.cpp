// Property-based validations (parameterized sweeps) tying the simulator to
// the paper's exact theory: detailed balance, the stationary law of the
// priority chain, eq. (9) swap rates, and exact-vs-simulated throughput.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "analysis/priority_chain.hpp"
#include "analysis/priority_evaluator.hpp"
#include "expfw/scenarios.hpp"
#include "helpers/scheme_harness.hpp"
#include "mac/centralized_scheduler.hpp"
#include "mac/dp_link_mac.hpp"
#include "net/network.hpp"
#include "traffic/arrival_process.hpp"
#include "util/math.hpp"

namespace rtmac {
namespace {

// ---- Detailed balance across network sizes and seeds ------------------------

class DetailedBalanceTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DetailedBalanceTest, Equation10SatisfiesDetailedBalance) {
  const auto [n, seed] = GetParam();
  Rng rng{static_cast<std::uint64_t>(seed)};
  std::vector<double> mu(static_cast<std::size_t>(n));
  for (auto& m : mu) m = rng.uniform_real(0.02, 0.98);
  const analysis::PriorityChain chain{mu};
  const auto pi = chain.stationary_analytic();
  EXPECT_LT(chain.detailed_balance_residual(pi), 1e-12);
  // And the numeric fixed point agrees.
  EXPECT_LT(total_variation(pi, chain.stationary_numeric()), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(SizesAndSeeds, DetailedBalanceTest,
                         ::testing::Combine(::testing::Values(2, 3, 4, 5),
                                            ::testing::Values(1, 2, 3, 4, 5)));

// ---- Empirical priority-chain law vs eq. (10) -------------------------------

class StationaryLawTest : public ::testing::TestWithParam<int> {};

TEST_P(StationaryLawTest, SimulatedChainMatchesAnalyticLaw) {
  // Run the REAL protocol (backoff, carrier sensing, empty packets) with
  // fixed coin biases and compare the empirical distribution over priority
  // permutations against eq. (10).
  const int seed = GetParam();
  const std::size_t n = 3;
  std::vector<double> mu{0.3, 0.5, 0.7};

  auto cfg = net::symmetric_network(n, Duration::milliseconds(2),
                                    phy::PhyParams::control_80211a(), 0.9,
                                    traffic::BernoulliArrivals{0.3}, 0.5,
                                    static_cast<std::uint64_t>(seed));
  net::Network network{std::move(cfg), expfw::dp_fixed_mu_factory(mu)};
  auto* dp = dynamic_cast<mac::DpScheme*>(&network.scheme());
  ASSERT_NE(dp, nullptr);

  constexpr IntervalIndex kBurnIn = 2000;
  constexpr IntervalIndex kSample = 30000;
  network.run(kBurnIn);
  std::vector<double> counts(6, 0.0);
  network.add_observer([&](IntervalIndex, std::span<const int>, std::span<const int>) {
    counts[dp->priorities().rank()] += 1.0;
  });
  network.run(kSample);
  normalize(counts);

  const analysis::PriorityChain chain{mu};
  const auto pi = chain.stationary_analytic();
  EXPECT_LT(total_variation(counts, pi), 0.03)
      << "empirical law diverges from eq. (10)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, StationaryLawTest, ::testing::Values(101, 202, 303));

// ---- Eq. (9): swap probability of the two-link chain -------------------------

class SwapRateTest : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(SwapRateTest, EmpiricalSwapRateMatchesEquation9) {
  const auto [mu_lo, mu_hi] = GetParam();
  auto cfg = net::symmetric_network(2, Duration::milliseconds(2),
                                    phy::PhyParams::control_80211a(), 0.9,
                                    traffic::ConstantArrivals{1}, 0.5, 424242);
  net::Network network{std::move(cfg), expfw::dp_fixed_mu_factory({mu_lo, mu_hi})};
  auto* dp = dynamic_cast<mac::DpScheme*>(&network.scheme());
  ASSERT_NE(dp, nullptr);

  // Count transitions out of each of the two states.
  std::map<std::pair<std::uint64_t, std::uint64_t>, int> transitions;
  std::uint64_t prev = dp->priorities().rank();
  network.add_observer([&](IntervalIndex, std::span<const int>, std::span<const int>) {
    const std::uint64_t cur = dp->priorities().rank();
    transitions[{prev, cur}]++;
    prev = cur;
  });
  constexpr int kIntervals = 20000;
  network.run(kIntervals);

  const auto id_rank = core::Permutation::identity(2).rank();
  const auto sw_rank = core::Permutation::from_priorities({2, 1}).rank();
  const int from_id = transitions[{id_rank, id_rank}] + transitions[{id_rank, sw_rank}];
  const int from_sw = transitions[{sw_rank, sw_rank}] + transitions[{sw_rank, id_rank}];
  // From identity: link0 holds priority 1 (lower candidate), link1 priority 2.
  // Swap prob = (1 - mu0) * mu1. From swapped: (1 - mu1) * mu0.
  if (from_id > 500) {
    const double rate = static_cast<double>(transitions[{id_rank, sw_rank}]) / from_id;
    EXPECT_NEAR(rate, (1.0 - mu_lo) * mu_hi, 0.03);
  }
  if (from_sw > 500) {
    const double rate = static_cast<double>(transitions[{sw_rank, id_rank}]) / from_sw;
    EXPECT_NEAR(rate, (1.0 - mu_hi) * mu_lo, 0.03);
  }
}

INSTANTIATE_TEST_SUITE_P(Biases, SwapRateTest,
                         ::testing::Values(std::pair{0.5, 0.5}, std::pair{0.3, 0.7},
                                           std::pair{0.2, 0.4}, std::pair{0.8, 0.6}));

// ---- Exact evaluator vs simulated centralized scheduler ----------------------

struct EvalCase {
  double p;
  int arrivals_per_link;
  std::int64_t interval_us;
};

class EvaluatorVsSimTest : public ::testing::TestWithParam<EvalCase> {};

TEST_P(EvaluatorVsSimTest, CentralizedSimulationMatchesExactExpectation) {
  const auto c = GetParam();
  const std::size_t n = 3;
  const auto phy = phy::PhyParams::video_80211a();
  const int slots = static_cast<int>(
      Duration::microseconds(c.interval_us).floor_div(phy.data_airtime));

  test::SchemeHarness h{ProbabilityVector(n, c.p), phy,
                        Duration::microseconds(c.interval_us), RateVector(n, 0.5), 777};
  const auto ctx = h.context();
  mac::CentralizedScheme ldf{ctx, mac::CentralizedParams{}, "LDF"};

  // Debts stay zero (the harness never updates them), so the ordering is the
  // identity every interval — matching evaluate_fixed on that ordering.
  const std::vector<int> arrivals(n, c.arrivals_per_link);
  std::vector<double> sums(n, 0.0);
  constexpr int kIntervals = 4000;
  for (int k = 0; k < kIntervals; ++k) {
    const auto d = h.run_interval(ldf, arrivals);
    for (std::size_t i = 0; i < n; ++i) sums[i] += d[i];
  }

  analysis::PriorityEvaluator eval{ProbabilityVector(n, c.p), slots};
  const auto exact = eval.evaluate_fixed({0, 1, 2}, arrivals);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(sums[i] / kIntervals, exact.expected_deliveries[i], 0.05)
        << "link " << i << " p=" << c.p;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, EvaluatorVsSimTest,
                         ::testing::Values(EvalCase{1.0, 2, 2000}, EvalCase{0.7, 2, 2000},
                                           EvalCase{0.5, 3, 3000}, EvalCase{0.9, 4, 2500}));

// ---- Feasibility dichotomy ---------------------------------------------------

class FeasibilityDichotomyTest : public ::testing::TestWithParam<double> {};

TEST_P(FeasibilityDichotomyTest, DeficiencyVanishesIffInsideRegion) {
  const double alpha = GetParam();
  const double util = core::workload_utilization(
      RateVector(20, 3.5 * alpha * 0.9), ProbabilityVector(20, 0.7), 60);
  net::Network net{expfw::video_symmetric(alpha, 0.9, 31), expfw::dbdp_factory()};
  net.run(2500);
  // Comfortably inside the region: the deficiency transient must have
  // decayed. Comfortably outside: it must stay macroscopically positive.
  // Loads near the boundary (0.8 <= util <= 1.1) are not asserted — finite
  // horizons cannot classify them reliably.
  if (util < 0.8) {
    EXPECT_LT(net.total_deficiency(), 0.15) << "alpha=" << alpha << " util=" << util;
  } else if (util > 1.1) {
    EXPECT_GT(net.total_deficiency(), 0.3) << "alpha=" << alpha << " util=" << util;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, FeasibilityDichotomyTest,
                         ::testing::Values(0.3, 0.45, 0.75, 0.9));

}  // namespace
}  // namespace rtmac
