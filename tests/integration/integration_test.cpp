// End-to-end behaviour of full networks: conservation laws, capacity
// ordering across schemes, and the feasibility-optimality claims at
// experiment scale (scaled-down grids to keep test runtime modest).
#include <gtest/gtest.h>

#include <numeric>

#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "stats/deficiency.hpp"

namespace rtmac {
namespace {

using expfw::control_symmetric;
using expfw::video_symmetric;

TEST(IntegrationTest, DeliveriesNeverExceedArrivals) {
  // Enforced per interval by LinkStatsCollector's internal assert, checked
  // here across schemes on an unreliable channel.
  for (const auto& factory :
       {expfw::dbdp_factory(), expfw::ldf_factory(), expfw::fcsma_factory()}) {
    net::Network net{video_symmetric(0.5, 0.9, 11), factory};
    net.run(100);
    for (LinkId n = 0; n < 20; ++n) {
      EXPECT_LE(net.stats().total_delivered(n), net.stats().total_arrivals(n));
    }
  }
}

TEST(IntegrationTest, DpIsCollisionFreeAtScale) {
  net::Network net{video_symmetric(0.55, 0.9, 12), expfw::dbdp_factory()};
  net.run(300);
  EXPECT_EQ(net.medium().counters().collisions, 0u);
  EXPECT_GT(net.medium().counters().data_tx, 1000u);
}

TEST(IntegrationTest, FcsmaCollidesAtScale) {
  net::Network net{video_symmetric(0.55, 0.9, 12), expfw::fcsma_factory()};
  net.run(300);
  EXPECT_GT(net.medium().counters().collisions, 0u);
}

TEST(IntegrationTest, FeasibleLoadDrivesDeficiencyToZero) {
  // alpha = 0.4 is comfortably inside the region (utilization ~ 0.64):
  // both LDF and DB-DP must fulfil the requirement.
  for (const auto& factory : {expfw::dbdp_factory(), expfw::ldf_factory()}) {
    net::Network net{video_symmetric(0.4, 0.9, 13), factory};
    net.run(800);
    EXPECT_LT(net.total_deficiency(), 0.05) << net.scheme().name();
  }
}

TEST(IntegrationTest, InfeasibleLoadLeavesDeficiency) {
  // alpha = 0.8 exceeds capacity (utilization ~ 1.29): nobody can fulfil it.
  for (const auto& factory : {expfw::dbdp_factory(), expfw::ldf_factory()}) {
    net::Network net{video_symmetric(0.8, 0.9, 13), factory};
    net.run(400);
    EXPECT_GT(net.total_deficiency(), 1.0) << net.scheme().name();
  }
}

TEST(IntegrationTest, CapacityOrderingLdfGeDbdpGeFcsma) {
  // At a load near the knee the schemes order by delivered throughput:
  // the genie >= DB-DP (small backoff overhead) >= FCSMA (collisions).
  const double alpha = 0.58;
  auto run_total = [&](const mac::SchemeFactory& f) {
    net::Network net{video_symmetric(alpha, 0.9, 14), f};
    net.run(400);
    std::uint64_t total = 0;
    for (LinkId n = 0; n < 20; ++n) total += net.stats().total_delivered(n);
    return total;
  };
  const auto ldf = run_total(expfw::ldf_factory());
  const auto dbdp = run_total(expfw::dbdp_factory());
  const auto fcsma = run_total(expfw::fcsma_factory());
  EXPECT_GE(ldf, dbdp);
  EXPECT_GT(dbdp, fcsma);
}

TEST(IntegrationTest, DbdpTracksLdfClosely) {
  // The headline claim (Figs. 3-4): DB-DP achieves nearly the timely
  // throughput of the centralized optimum. DB-DP's deficiency decays more
  // slowly (the priority chain performs one adjacent swap per interval, so
  // spreading from the identity ordering takes ~N^2 intervals), so compare
  // at a horizon past that transient and with a transient allowance.
  const double alpha = 0.55;
  auto deficiency = [&](const mac::SchemeFactory& f) {
    net::Network net{video_symmetric(alpha, 0.9, 15), f};
    net.run(2500);
    return net.total_deficiency();
  };
  const double ldf = deficiency(expfw::ldf_factory());
  const double dbdp = deficiency(expfw::dbdp_factory());
  EXPECT_LT(dbdp, ldf + 1.0);
  // Sanity floor: both are fulfilling the requirement, not diverging.
  EXPECT_LT(dbdp, 1.2);
}

TEST(IntegrationTest, ControlProfileFeasibleAtPaperLoad) {
  // Fig. 9 region: lambda = 0.7, rho = 0.99 is feasible for LDF and DB-DP.
  for (const auto& factory : {expfw::dbdp_factory(), expfw::ldf_factory()}) {
    net::Network net{control_symmetric(0.7, 0.99, 16), factory};
    net.run(3000);
    EXPECT_LT(net.total_deficiency(), 0.05) << net.scheme().name();
  }
}

TEST(IntegrationTest, AsymmetricNetworkBothGroupsServedByDbdp) {
  net::Network net{expfw::video_asymmetric(0.5, 0.9, 17), expfw::dbdp_factory()};
  net.run(600);
  const auto q = net.config().requirements.q();
  EXPECT_LT(stats::group_deficiency(net.stats(), q, expfw::asymmetric_group(1)), 0.1);
  EXPECT_LT(stats::group_deficiency(net.stats(), q, expfw::asymmetric_group(2)), 0.1);
}

TEST(IntegrationTest, StaticPriorityLowestLinkStillServed) {
  // Fig. 6 claim: under a fixed priority ordering the lowest-priority link
  // still receives nonzero timely-throughput (no complete starvation).
  net::Network net{video_symmetric(0.6, 0.9, 18), expfw::dp_static_priority_factory()};
  net.run(400);
  EXPECT_GT(net.stats().total_delivered(19), 0u);
  // And throughput is (weakly) decreasing in priority index overall:
  EXPECT_GT(net.stats().timely_throughput(0), net.stats().timely_throughput(19));
}

TEST(IntegrationTest, DcfUnderperformsDbdp) {
  const double alpha = 0.55;
  auto run_total = [&](const mac::SchemeFactory& f) {
    net::Network net{video_symmetric(alpha, 0.9, 19), f};
    net.run(300);
    std::uint64_t total = 0;
    for (LinkId n = 0; n < 20; ++n) total += net.stats().total_delivered(n);
    return total;
  };
  EXPECT_GT(run_total(expfw::dbdp_factory()), run_total(expfw::dcf_factory()));
}

TEST(IntegrationTest, ExtensionsComposeGeCorrelatedMultipair) {
  // All three extensions together: Gilbert-Elliott losses + common-shock
  // traffic + 4-pair reordering. The protocol invariants must survive the
  // composition: zero collisions, valid priorities, bounded claim overhead.
  phy::GilbertElliottParams ge{.p_good = 0.9, .p_bad = 0.3, .good_to_bad = 0.05,
                               .bad_to_good = 0.2};
  const double mean_p = ge.mean_success();  // 0.78
  auto cfg = expfw::video_symmetric(0.35, 0.9, 21);
  for (auto& p : cfg.success_prob) p = mean_p;
  cfg.channel_factory = [ge] {
    return std::make_unique<phy::GilbertElliottChannel>(
        std::vector<phy::GilbertElliottParams>(20, ge));
  };
  cfg.arrivals.clear();
  cfg.joint_arrivals =
      std::make_unique<traffic::CommonShockBurstyArrivals>(20, 0.35, 0.03);
  net::Network net{std::move(cfg), expfw::dbdp_multipair_factory(4)};
  net.run(800);
  EXPECT_EQ(net.medium().counters().collisions, 0u);
  EXPECT_LT(net.total_deficiency(), 0.5);
  // Claim overhead: at most 2 per pair per interval.
  EXPECT_LE(net.medium().counters().empty_tx, 800u * 8u);
}

TEST(IntegrationTest, IdenticalSeedsAcrossSchemesShareArrivalSequence) {
  // The arrival RNG stream is independent of the scheme, so two schemes at
  // the same seed face the identical arrival sample path — the paired
  // comparison design the figure benches rely on.
  net::Network a{video_symmetric(0.5, 0.9, 1234), expfw::ldf_factory()};
  net::Network b{video_symmetric(0.5, 0.9, 1234), expfw::fcsma_factory()};
  std::vector<int> arrivals_a;
  std::vector<int> arrivals_b;
  a.add_observer([&](IntervalIndex, std::span<const int> arr, std::span<const int>) {
    for (int x : arr) arrivals_a.push_back(x);
  });
  b.add_observer([&](IntervalIndex, std::span<const int> arr, std::span<const int>) {
    for (int x : arr) arrivals_b.push_back(x);
  });
  a.run(50);
  b.run(50);
  EXPECT_EQ(arrivals_a, arrivals_b);
}

TEST(IntegrationTest, BusyTimeNeverExceedsSimulatedTime) {
  net::Network net{video_symmetric(0.6, 0.9, 20), expfw::dbdp_factory()};
  net.run(200);
  EXPECT_LE(net.medium().counters().busy_time.ns(),
            (net.simulator().now() - TimePoint::origin()).ns());
}

}  // namespace
}  // namespace rtmac
