#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rtmac::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
}

TEST(SimulatorTest, RunAdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<std::int64_t> observed;
  sim.schedule_in(Duration::microseconds(10), [&] { observed.push_back(sim.now().ns()); });
  sim.schedule_in(Duration::microseconds(5), [&] { observed.push_back(sim.now().ns()); });
  sim.run();
  EXPECT_EQ(observed, (std::vector<std::int64_t>{5'000, 10'000}));
  EXPECT_EQ(sim.now().ns(), 10'000);
}

TEST(SimulatorTest, CallbacksCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_in(Duration::microseconds(1), chain);
  };
  sim.schedule_in(Duration::microseconds(1), chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now().ns(), 5'000);
}

TEST(SimulatorTest, ZeroDelayEventRunsAtCurrentTime) {
  Simulator sim;
  bool inner = false;
  sim.schedule_in(Duration::microseconds(3), [&] {
    sim.schedule_in(Duration{}, [&] {
      inner = true;
      EXPECT_EQ(sim.now().ns(), 3'000);
    });
  });
  sim.run();
  EXPECT_TRUE(inner);
}

TEST(SimulatorTest, RunUntilStopsAtHorizonAndSetsClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(Duration::microseconds(5), [&] { ++fired; });
  sim.schedule_in(Duration::microseconds(15), [&] { ++fired; });
  sim.run_until(TimePoint::origin() + Duration::microseconds(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ns(), 10'000);
  // The 15us event is still pending and runs on the next call.
  sim.run_until(TimePoint::origin() + Duration::microseconds(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now().ns(), 20'000);
}

TEST(SimulatorTest, RunUntilIncludesEventsExactlyAtHorizon) {
  Simulator sim;
  bool fired = false;
  sim.schedule_in(Duration::microseconds(10), [&] { fired = true; });
  sim.run_until(TimePoint::origin() + Duration::microseconds(10));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StopTerminatesRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(Duration::microseconds(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_in(Duration::microseconds(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, CancelledEventDoesNotRun) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_in(Duration::microseconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.is_pending(id));
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_in(Duration::microseconds(i + 1), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulatorTest, SameTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const TimePoint t = TimePoint::origin() + Duration::microseconds(4);
  sim.schedule_at(t, [&] { order.push_back(1); });
  sim.schedule_at(t, [&] { order.push_back(2); });
  sim.schedule_at(t, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace rtmac::sim
