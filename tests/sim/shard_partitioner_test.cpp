// Property tests for the conflict-graph partitioner (DESIGN §4i): every
// cross-cell relation must land in the cut sets, plans must be bitwise
// deterministic, and complete graphs must never be split.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/shard_partitioner.hpp"
#include "util/rng.hpp"

namespace rtmac::sim {
namespace {

// ---- helpers ----------------------------------------------------------------

AdjacencyLists complete_adjacency(std::size_t n) {
  AdjacencyLists out(n);
  for (LinkId a = 0; a < n; ++a) {
    for (LinkId b = 0; b < n; ++b) {
      if (a != b) out[a].push_back(b);
    }
  }
  return out;
}

/// Random symmetric conflict graph + random directed sense relation,
/// deterministic in `seed`.
struct RandomTopology {
  AdjacencyLists conflict;
  AdjacencyLists sense;
};

RandomTopology random_topology(std::size_t n, double conflict_p, double sense_p,
                               std::uint64_t seed) {
  Rng rng{seed, /*stream_id=*/0x70707ULL};
  RandomTopology t{AdjacencyLists(n), AdjacencyLists(n)};
  for (LinkId a = 0; a < n; ++a) {
    for (LinkId b = a + 1; b < n; ++b) {
      if (rng.next_double() < conflict_p) {
        t.conflict[a].push_back(b);
        t.conflict[b].push_back(a);
      }
    }
  }
  for (LinkId l = 0; l < n; ++l) {
    for (LinkId s = 0; s < n; ++s) {
      if (l != s && rng.next_double() < sense_p) t.sense[l].push_back(s);
    }
  }
  return t;
}

bool plans_equal(const ShardPlan& a, const ShardPlan& b) {
  return a.cell_of == b.cell_of && a.cells == b.cells && a.cut_conflicts == b.cut_conflicts &&
         a.cut_senses == b.cut_senses && a.groups == b.groups;
}

/// The core partition invariants, checked for any plan:
///  - cells partition {0..n-1}, each ascending, cell_of consistent;
///  - every conflict edge is intra-cell or in cut_conflicts (exactly);
///  - every sense relation is intra-cell or in cut_senses (exactly);
///  - groups cover every cell exactly once.
void check_invariants(const ShardPlan& plan, const AdjacencyLists& conflict,
                      const AdjacencyLists& sense) {
  const std::size_t n = conflict.size();
  ASSERT_EQ(plan.num_links(), n);

  std::vector<int> covered(n, 0);
  for (std::uint32_t c = 0; c < plan.cells.size(); ++c) {
    ASSERT_FALSE(plan.cells[c].empty());
    ASSERT_TRUE(std::is_sorted(plan.cells[c].begin(), plan.cells[c].end()));
    for (const LinkId v : plan.cells[c]) {
      ASSERT_LT(v, n);
      ++covered[v];
      EXPECT_EQ(plan.cell_of[v], c);
    }
  }
  for (std::size_t v = 0; v < n; ++v) EXPECT_EQ(covered[v], 1) << "link " << v;

  // Cut sets: sorted, and exactly the cross-cell relations.
  ASSERT_TRUE(std::is_sorted(plan.cut_conflicts.begin(), plan.cut_conflicts.end(),
                             [](const CutEdge& x, const CutEdge& y) {
                               return x.a != y.a ? x.a < y.a : x.b < y.b;
                             }));
  const auto in_cut_conflicts = [&](LinkId a, LinkId b) {
    const CutEdge e{std::min(a, b), std::max(a, b)};
    return std::find(plan.cut_conflicts.begin(), plan.cut_conflicts.end(), e) !=
           plan.cut_conflicts.end();
  };
  for (LinkId a = 0; a < n; ++a) {
    for (const LinkId b : conflict[a]) {
      if (a == b) continue;
      const bool cross = plan.cell_of[a] != plan.cell_of[b];
      EXPECT_EQ(in_cut_conflicts(a, b), cross) << "conflict " << a << "-" << b;
    }
  }
  for (const CutEdge& e : plan.cut_conflicts) {
    EXPECT_LT(e.a, e.b);
    EXPECT_NE(plan.cell_of[e.a], plan.cell_of[e.b]);
  }

  const auto in_cut_senses = [&](LinkId listener, LinkId speaker) {
    const CutSense s{listener, speaker};
    return std::find(plan.cut_senses.begin(), plan.cut_senses.end(), s) !=
           plan.cut_senses.end();
  };
  for (LinkId listener = 0; listener < sense.size(); ++listener) {
    for (const LinkId speaker : sense[listener]) {
      if (listener == speaker) continue;
      const bool cross = plan.cell_of[listener] != plan.cell_of[speaker];
      EXPECT_EQ(in_cut_senses(listener, speaker), cross)
          << "sense " << listener << "<-" << speaker;
    }
  }
  for (const CutSense& s : plan.cut_senses) {
    EXPECT_NE(plan.cell_of[s.listener], plan.cell_of[s.speaker]);
  }

  std::vector<int> grouped(plan.cells.size(), 0);
  for (const auto& group : plan.groups) {
    for (const std::uint32_t c : group) {
      ASSERT_LT(c, plan.cells.size());
      ++grouped[c];
    }
  }
  for (std::size_t c = 0; c < plan.cells.size(); ++c) EXPECT_EQ(grouped[c], 1) << "cell " << c;
}

// ---- properties -------------------------------------------------------------

TEST(ShardPartitionerTest, CompleteGraphsAlwaysYieldOneCell) {
  for (const std::size_t n : {1UL, 2UL, 5UL, 17UL}) {
    for (const std::size_t target : {1UL, 2UL, 4UL, 16UL}) {
      const auto plan = partition_topology(complete_adjacency(n), complete_adjacency(n), target);
      EXPECT_EQ(plan.cells.size(), 1U) << "n=" << n << " target=" << target;
      EXPECT_TRUE(plan.trivial());
    }
  }
}

TEST(ShardPartitionerTest, DisconnectedCliquesBecomeTheirOwnCutFreeCells) {
  // Four disjoint cliques of 3: cells must be exactly the cliques, no cuts,
  // regardless of how much parallelism is requested (cliques never split).
  const std::size_t n = 12;
  AdjacencyLists conflict(n);
  for (LinkId a = 0; a < n; ++a) {
    for (LinkId b = 0; b < n; ++b) {
      if (a != b && a / 3 == b / 3) conflict[a].push_back(b);
    }
  }
  for (const std::size_t target : {1UL, 2UL, 4UL, 8UL}) {
    const auto plan = partition_topology(conflict, conflict, target);
    ASSERT_EQ(plan.cells.size(), 4U);
    EXPECT_TRUE(plan.cut_conflicts.empty());
    EXPECT_TRUE(plan.cut_senses.empty());
    for (std::uint32_t c = 0; c < 4; ++c) {
      EXPECT_EQ(plan.cells[c], (std::vector<LinkId>{3 * c, 3 * c + 1, 3 * c + 2}));
    }
    EXPECT_EQ(plan.groups.size(), std::min<std::size_t>(target, 4));
    check_invariants(plan, conflict, conflict);
  }
}

TEST(ShardPartitionerTest, ConnectedNonCliqueIsBisectedWithAnExplicitCut) {
  // A path 0-1-2-3: connected, not a clique. Two shards must split it and
  // report the crossing edge.
  AdjacencyLists conflict{{1}, {0, 2}, {1, 3}, {2}};
  const AdjacencyLists sense(4);
  const auto plan = partition_topology(conflict, sense, 2);
  ASSERT_EQ(plan.cells.size(), 2U);
  EXPECT_FALSE(plan.cut_conflicts.empty());
  check_invariants(plan, conflict, sense);
}

TEST(ShardPartitionerTest, RandomTopologiesSatisfyThePartitionInvariants) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto t = random_topology(40, 0.06, 0.04, seed);
    for (const std::size_t target : {1UL, 2UL, 3UL, 7UL}) {
      const auto plan = partition_topology(t.conflict, t.sense, target);
      check_invariants(plan, t.conflict, t.sense);
    }
  }
}

TEST(ShardPartitionerTest, PlansAreDeterministicAcrossRuns) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto t = random_topology(32, 0.08, 0.05, seed);
    const auto a = partition_topology(t.conflict, t.sense, 4);
    const auto b = partition_topology(t.conflict, t.sense, 4);
    EXPECT_TRUE(plans_equal(a, b)) << "seed " << seed;
  }
}

TEST(ShardPartitionerTest, InputNormalizationDoesNotChangeThePlan) {
  // Unsorted, duplicated neighbor lists and one-sided conflict entries must
  // normalize to the same plan as the clean form.
  AdjacencyLists clean{{1}, {0, 2}, {1, 3}, {2}};
  AdjacencyLists messy{{1, 1}, {2, 0, 2}, {3, 1}, {}};  // (2,3) listed one-sided
  const AdjacencyLists sense(4);
  EXPECT_TRUE(plans_equal(partition_topology(clean, sense, 2),
                          partition_topology(messy, sense, 2)));
}

TEST(ShardPartitionerTest, SenseOnlyCouplingKeepsLinksInOneCell) {
  // No conflicts at all, but 0 hears 1: connectivity is the union relation,
  // so both land in one cell and a split would cut the sense edge.
  AdjacencyLists conflict(2);
  AdjacencyLists sense{{1}, {}};
  const auto plan = partition_topology(conflict, sense, 1);
  ASSERT_EQ(plan.cells.size(), 1U);
  EXPECT_TRUE(plan.trivial());
}

}  // namespace
}  // namespace rtmac::sim
