#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace rtmac::sim {
namespace {

TimePoint at_us(std::int64_t us) { return TimePoint::origin() + Duration::microseconds(us); }

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(at_us(30), [&] { fired.push_back(3); });
  q.push(at_us(10), [&] { fired.push_back(1); });
  q.push(at_us(20), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAmongSimultaneousEvents) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.push(at_us(10), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeReportsEarliestLive) {
  EventQueue q;
  const EventId early = q.push(at_us(5), [] {});
  q.push(at_us(9), [] {});
  EXPECT_EQ(q.next_time(), at_us(5));
  q.cancel(early);
  EXPECT_EQ(q.next_time(), at_us(9));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(at_us(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.push(at_us(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  const EventId id = q.push(at_us(1), [] {});
  q.pop().callback();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelInvalidHandle) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueueTest, IsPendingTracksLifecycle) {
  EventQueue q;
  const EventId id = q.push(at_us(1), [] {});
  EXPECT_TRUE(q.is_pending(id));
  q.pop();
  EXPECT_FALSE(q.is_pending(id));
  EXPECT_FALSE(q.is_pending(EventId{}));
}

TEST(EventQueueTest, SizeCountsOnlyLiveEvents) {
  EventQueue q;
  const EventId a = q.push(at_us(1), [] {});
  q.push(at_us(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, ClearDropsEverything) {
  EventQueue q;
  q.push(at_us(1), [] {});
  q.push(at_us(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, TombstonesDoNotBlockLaterEvents) {
  EventQueue q;
  std::vector<int> fired;
  const EventId a = q.push(at_us(1), [&] { fired.push_back(1); });
  const EventId b = q.push(at_us(2), [&] { fired.push_back(2); });
  q.push(at_us(3), [&] { fired.push_back(3); });
  q.cancel(a);
  q.cancel(b);
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{3}));
}

// ABA protection: a handle whose slot has been recycled by a newer event
// must not touch that newer event. The generation counter is what makes the
// O(1) slot probe safe.
TEST(EventQueueTest, StaleHandleAfterSlotReuseIsInert) {
  EventQueue q;
  bool second_fired = false;
  const EventId first = q.push(at_us(1), [] {});
  ASSERT_TRUE(q.cancel(first));  // frees the slot
  const EventId second = q.push(at_us(2), [&] { second_fired = true; });
  // With a single-slot pool the second push reuses the first's slot; the
  // stale handle must now be rejected by the generation check.
  EXPECT_FALSE(q.is_pending(first));
  EXPECT_FALSE(q.cancel(first));
  EXPECT_TRUE(q.is_pending(second));
  q.pop().callback();
  EXPECT_TRUE(second_fired);
}

TEST(EventQueueTest, StaleHandleAfterPopAndSlotReuseIsInert) {
  EventQueue q;
  const EventId first = q.push(at_us(1), [] {});
  q.pop().callback();  // fires: slot freed without cancel()
  const EventId second = q.push(at_us(2), [] {});
  EXPECT_FALSE(q.is_pending(first));
  EXPECT_FALSE(q.cancel(first));
  EXPECT_TRUE(q.is_pending(second));
  EXPECT_TRUE(q.cancel(second));
}

// Many alloc/release rounds on the same slots: no old handle from any round
// may match a later occupancy.
TEST(EventQueueTest, GenerationsAdvanceAcrossManyReuses) {
  EventQueue q;
  std::vector<EventId> retired;
  for (int round = 0; round < 100; ++round) {
    const EventId id = q.push(at_us(round), [] {});
    for (const EventId& old : retired) {
      EXPECT_FALSE(q.is_pending(old));
      EXPECT_FALSE(q.cancel(old));
    }
    EXPECT_TRUE(q.is_pending(id));
    q.cancel(id);
    retired.push_back(id);
  }
  EXPECT_TRUE(q.empty());
}

// Randomized schedule/cancel/pop churn cross-checked against a naive ordered
// reference model (std::multimap keyed by (time, push order)). Any divergence
// in firing order, firing set, or size is a bug in the slot pool, tombstone
// bookkeeping, or compaction.
TEST(EventQueueTest, RandomizedChurnMatchesReferenceModel) {
  EventQueue q;
  // (time_us, seq) -> payload; iteration order == required firing order.
  std::multimap<std::pair<std::int64_t, std::uint64_t>, int> reference;
  struct Live {
    EventId id;
    std::pair<std::int64_t, std::uint64_t> key;
  };
  std::vector<Live> live;
  std::vector<EventId> stale;
  std::vector<int> fired;
  std::vector<int> expected;
  std::uint64_t seq = 0;
  int payload = 0;
  std::uint64_t x = 0x2545F4914F6CDD1DULL;
  auto rng = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t r = rng();
    const std::uint64_t action = r % 10;
    if (action < 5 || live.empty()) {  // push (biased: keeps the set populated)
      const auto t = static_cast<std::int64_t>(rng() % 512);
      const int value = payload++;
      const std::pair<std::int64_t, std::uint64_t> key{t, seq++};
      const EventId id = q.push(at_us(t), [&fired, value] { fired.push_back(value); });
      reference.emplace(key, value);
      live.push_back(Live{id, key});
    } else if (action < 8) {  // cancel a live handle
      const std::size_t pick = rng() % live.size();
      EXPECT_TRUE(q.cancel(live[pick].id));
      reference.erase(reference.find(live[pick].key));
      stale.push_back(live[pick].id);
      live[pick] = live.back();
      live.pop_back();
    } else if (action == 8 && !stale.empty()) {  // re-cancel a stale handle
      const std::size_t pick = rng() % stale.size();
      EXPECT_FALSE(q.cancel(stale[pick]));
      EXPECT_FALSE(q.is_pending(stale[pick]));
    } else if (!q.empty()) {  // pop the earliest live event
      ASSERT_FALSE(reference.empty());
      const auto front = reference.begin();
      EXPECT_EQ(q.next_time(), at_us(front->first.first));
      expected.push_back(front->second);
      const auto popped_key = front->first;
      reference.erase(front);
      live.erase(std::find_if(live.begin(), live.end(),
                              [&](const Live& l) { return l.key == popped_key; }));
      auto popped = q.pop();
      EXPECT_EQ(popped.time, at_us(popped_key.first));
      popped.callback();
    }
    ASSERT_EQ(q.size(), reference.size());
    // Compaction policy invariant: heap = live + tombstones, and tombstones
    // may exceed live records only while the heap is below the compaction
    // floor (compacting tiny heaps isn't worth it).
    ASSERT_LE(q.tombstones(), std::max<std::size_t>(63, q.size()));
  }
  // Drain what's left; order must match the reference exactly.
  while (!q.empty()) {
    ASSERT_FALSE(reference.empty());
    expected.push_back(reference.begin()->second);
    reference.erase(reference.begin());
    q.pop().callback();
  }
  EXPECT_TRUE(reference.empty());
  EXPECT_EQ(fired, expected);
}

// Cancel-heavy load: tombstones must be reclaimed (compaction), and the
// surviving events must still fire in exact (time, FIFO) order.
TEST(EventQueueTest, CompactionReclaimsTombstonesAndPreservesOrder) {
  EventQueue q;
  std::vector<int> fired;
  constexpr int kKeepers = 16;
  constexpr int kVictims = 1000;
  for (int i = 0; i < kKeepers; ++i) {
    q.push(at_us(500), [&fired, i] { fired.push_back(i); });  // all simultaneous: FIFO
  }
  std::vector<EventId> victims;
  victims.reserve(kVictims);
  for (int i = 0; i < kVictims; ++i) victims.push_back(q.push(at_us(1000 + i), [] {}));
  std::size_t max_tombstones = 0;
  for (const EventId id : victims) {
    ASSERT_TRUE(q.cancel(id));
    max_tombstones = std::max(max_tombstones, q.tombstones());
  }
  // Cancelling ~98% of the heap must trip compaction: at every step
  // tombstones stay <= live records (the > heap/2 trigger), so the high-water
  // mark is far below the kVictims it would reach with pure lazy deletion.
  EXPECT_LT(max_tombstones, static_cast<std::size_t>(kVictims) * 3 / 4);
  EXPECT_LT(q.tombstones(), static_cast<std::size_t>(kVictims) / 2);
  EXPECT_EQ(q.size(), static_cast<std::size_t>(kKeepers));
  while (!q.empty()) q.pop().callback();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(kKeepers));
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(EventQueueTest, ReserveMakesSteadyStateReallocFree) {
  EventQueue q;
  q.reserve(64);
  EXPECT_EQ(q.reallocs(), 0u);
  std::vector<EventId> ids;
  for (int round = 0; round < 200; ++round) {
    ids.clear();
    for (int i = 0; i < 32; ++i) ids.push_back(q.push(at_us(round * 100 + i), [] {}));
    for (int i = 0; i < 32; i += 2) q.cancel(ids[static_cast<std::size_t>(i)]);
    while (!q.empty()) q.pop().callback();
  }
  // Working set (32 live + tombstone headroom) stayed under the hint.
  EXPECT_EQ(q.reallocs(), 0u);
}

TEST(EventQueueTest, ReallocsCountsGrowthWithoutReserve) {
  EventQueue q;
  for (int i = 0; i < 1000; ++i) q.push(at_us(i), [] {});
  EXPECT_GT(q.reallocs(), 0u);
}

TEST(EventQueueTest, ClearRetiresOutstandingHandles) {
  EventQueue q;
  const EventId id = q.push(at_us(1), [] {});
  q.clear();
  EXPECT_FALSE(q.is_pending(id));
  EXPECT_FALSE(q.cancel(id));
  const EventId fresh = q.push(at_us(2), [] {});
  EXPECT_TRUE(q.is_pending(fresh));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<std::int64_t> fired;
  // Interleave pushes with deterministic pseudo-random times.
  std::uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 2000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const auto t = static_cast<std::int64_t>(x % 1000);
    q.push(at_us(t), [&fired, t] { fired.push_back(t); });
  }
  while (!q.empty()) q.pop().callback();
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(fired.size(), 2000u);
}

}  // namespace
}  // namespace rtmac::sim
