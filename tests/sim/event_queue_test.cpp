#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rtmac::sim {
namespace {

TimePoint at_us(std::int64_t us) { return TimePoint::origin() + Duration::microseconds(us); }

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(at_us(30), [&] { fired.push_back(3); });
  q.push(at_us(10), [&] { fired.push_back(1); });
  q.push(at_us(20), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAmongSimultaneousEvents) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.push(at_us(10), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeReportsEarliestLive) {
  EventQueue q;
  const EventId early = q.push(at_us(5), [] {});
  q.push(at_us(9), [] {});
  EXPECT_EQ(q.next_time(), at_us(5));
  q.cancel(early);
  EXPECT_EQ(q.next_time(), at_us(9));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(at_us(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.push(at_us(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  const EventId id = q.push(at_us(1), [] {});
  q.pop().callback();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelInvalidHandle) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueueTest, IsPendingTracksLifecycle) {
  EventQueue q;
  const EventId id = q.push(at_us(1), [] {});
  EXPECT_TRUE(q.is_pending(id));
  q.pop();
  EXPECT_FALSE(q.is_pending(id));
  EXPECT_FALSE(q.is_pending(EventId{}));
}

TEST(EventQueueTest, SizeCountsOnlyLiveEvents) {
  EventQueue q;
  const EventId a = q.push(at_us(1), [] {});
  q.push(at_us(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, ClearDropsEverything) {
  EventQueue q;
  q.push(at_us(1), [] {});
  q.push(at_us(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, TombstonesDoNotBlockLaterEvents) {
  EventQueue q;
  std::vector<int> fired;
  const EventId a = q.push(at_us(1), [&] { fired.push_back(1); });
  const EventId b = q.push(at_us(2), [&] { fired.push_back(2); });
  q.push(at_us(3), [&] { fired.push_back(3); });
  q.cancel(a);
  q.cancel(b);
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{3}));
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<std::int64_t> fired;
  // Interleave pushes with deterministic pseudo-random times.
  std::uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 2000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const auto t = static_cast<std::int64_t>(x % 1000);
    q.push(at_us(t), [&fired, t] { fired.push_back(t); });
  }
  while (!q.empty()) q.pop().callback();
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(fired.size(), 2000u);
}

}  // namespace
}  // namespace rtmac::sim
