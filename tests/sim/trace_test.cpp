#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "traffic/arrival_process.hpp"

namespace rtmac::sim {
namespace {

TEST(TracerTest, RecordsAndFilters) {
  Tracer tracer{16};
  tracer.record(TimePoint::from_ns(1), TraceKind::kTxStart, 3, 100);
  tracer.record(TimePoint::from_ns(2), TraceKind::kTxEnd, 3, 0);
  tracer.record(TimePoint::from_ns(3), TraceKind::kTxStart, 4, 100);
  EXPECT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.count(TraceKind::kTxStart), 2u);
  EXPECT_EQ(tracer.count(TraceKind::kTxStart, 3), 1u);
  const auto tx3 = tracer.filter(TraceKind::kTxStart, 3);
  ASSERT_EQ(tx3.size(), 1u);
  EXPECT_EQ(tx3[0].a, 100);
}

TEST(TracerTest, RingBufferDropsOldest) {
  Tracer tracer{4};
  for (int i = 0; i < 10; ++i) {
    tracer.record(TimePoint::from_ns(i), TraceKind::kBackoffArmed, 0, i);
  }
  EXPECT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.events().front().a, 6);
  EXPECT_EQ(tracer.events().back().a, 9);
}

TEST(TracerTest, RenderMentionsKindsAndLinks) {
  Tracer tracer;
  tracer.record(TimePoint::from_ns(5000), TraceKind::kSwapUp, 7, 3, 2);
  const std::string s = tracer.render();
  EXPECT_NE(s.find("swap-up"), std::string::npos);
  EXPECT_NE(s.find("link=7"), std::string::npos);
}

TEST(TracerTest, CapacityZeroMeansUnbounded) {
  Tracer tracer{0};
  EXPECT_EQ(tracer.capacity(), 0u);
  const std::size_t n = 70000;  // exceeds the default bounded capacity
  for (std::size_t i = 0; i < n; ++i) {
    tracer.record(TimePoint::from_ns(static_cast<std::int64_t>(i)),
                  TraceKind::kBackoffArmed, 0);
  }
  EXPECT_EQ(tracer.events().size(), n);
  EXPECT_EQ(tracer.total_recorded(), n);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, CountCacheMatchesFilterAcrossRingDrops) {
  Tracer tracer{8};
  // A mixed stream long enough to wrap the ring several times.
  for (int i = 0; i < 40; ++i) {
    const auto kind = static_cast<TraceKind>(i % static_cast<int>(kTraceKindCount));
    tracer.record(TimePoint::from_ns(i), kind, static_cast<LinkId>(i % 3));
  }
  for (std::size_t k = 0; k < kTraceKindCount; ++k) {
    const auto kind = static_cast<TraceKind>(k);
    EXPECT_EQ(tracer.count(kind), tracer.filter(kind).size());
    for (LinkId link = 0; link < 3; ++link) {
      EXPECT_EQ(tracer.count(kind, link), tracer.filter(kind, link).size());
    }
  }
  tracer.clear();
  EXPECT_EQ(tracer.count(TraceKind::kBackoffArmed), 0u);
  EXPECT_EQ(tracer.count(TraceKind::kBackoffArmed, 1), 0u);
}

TEST(TracerTest, ClearResets) {
  Tracer tracer;
  tracer.record(TimePoint::origin(), TraceKind::kIntervalStart);
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

TEST(TraceIntegrationTest, FullStackProducesCoherentTrace) {
  auto cfg = net::symmetric_network(3, Duration::milliseconds(20),
                                    phy::PhyParams::video_80211a(), 1.0,
                                    traffic::ConstantArrivals{1}, 0.9, 61);
  net::Network net{std::move(cfg), expfw::dbdp_factory()};
  Tracer tracer;
  net.attach_tracer(&tracer);
  net.run(10);

  // Interval boundaries: 10 starts, 10 ends, alternating.
  EXPECT_EQ(tracer.count(TraceKind::kIntervalStart), 10u);
  EXPECT_EQ(tracer.count(TraceKind::kIntervalEnd), 10u);
  // Every link arms a backoff every interval.
  EXPECT_EQ(tracer.count(TraceKind::kBackoffArmed), 30u);
  // p = 1, 1 packet each: exactly one data tx per link per interval, plus
  // possibly empty claim packets from candidates... with ConstantArrivals{1}
  // no empty packets are ever needed.
  EXPECT_EQ(tracer.count(TraceKind::kTxStart), 30u);
  EXPECT_EQ(tracer.count(TraceKind::kTxEnd), 30u);
  // Every tx-end reports delivered (outcome 0) on the perfect channel.
  for (const auto& e : tracer.filter(TraceKind::kTxEnd)) EXPECT_EQ(e.a, 0);
  // Swap events must come in consistent up/down pairs.
  EXPECT_EQ(tracer.count(TraceKind::kSwapUp), tracer.count(TraceKind::kSwapDown));
}

TEST(TraceIntegrationTest, SwapEventsMatchPriorityEvolution) {
  auto cfg = net::symmetric_network(2, Duration::milliseconds(20),
                                    phy::PhyParams::video_80211a(), 1.0,
                                    traffic::ConstantArrivals{1}, 0.9, 62);
  net::Network net{std::move(cfg), expfw::dp_fixed_mu_factory({1e-9, 1.0 - 1e-9})};
  Tracer tracer;
  net.attach_tracer(&tracer);
  net.run(1);
  // Deterministic coins force exactly one swap in interval 0 (see
  // DpProtocolTest.SwapHappensWhenBothCandidatesAgree).
  ASSERT_EQ(tracer.count(TraceKind::kSwapUp), 1u);
  ASSERT_EQ(tracer.count(TraceKind::kSwapDown), 1u);
  const auto up = tracer.filter(TraceKind::kSwapUp)[0];
  const auto down = tracer.filter(TraceKind::kSwapDown)[0];
  EXPECT_EQ(up.link, 1u);
  EXPECT_EQ(up.a, 2);
  EXPECT_EQ(up.b, 1);
  EXPECT_EQ(down.link, 0u);
  EXPECT_EQ(down.a, 1);
  EXPECT_EQ(down.b, 2);
}

TEST(TraceIntegrationTest, FreezeEventsAppearUnderContention) {
  auto cfg = net::symmetric_network(4, Duration::milliseconds(20),
                                    phy::PhyParams::video_80211a(), 1.0,
                                    traffic::ConstantArrivals{2}, 0.9, 63);
  net::Network net{std::move(cfg), expfw::dbdp_factory()};
  Tracer tracer;
  net.attach_tracer(&tracer);
  net.run(5);
  // Lower-priority links necessarily freeze while higher ones transmit.
  EXPECT_GT(tracer.count(TraceKind::kBackoffFrozen), 0u);
  EXPECT_EQ(tracer.count(TraceKind::kBackoffFrozen),
            tracer.count(TraceKind::kBackoffResumed));
}

}  // namespace
}  // namespace rtmac::sim
