// RNG-stream contract tests for the batched fast paths.
//
// The arrival kernel and the Medium's cached StaticChannel loss draw both
// replace virtual per-object calls with table-driven loops — and both are
// only correct if they consume the SHARED RNG stream bit-for-bit as the
// scalar code they replace: same methods, same argument bits, same order.
// Golden figure CSVs and the shards x jobs determinism diffs rest on that
// contract, so these tests lock it as a property over seeds, rates, and
// link counts: two Rngs cloned from the same state must emerge from the
// batch path and the scalar path in identical states, having produced
// identical values.
#include "net/arrival_kernel.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "phy/channel_model.hpp"
#include "traffic/arrival_process.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace rtmac::net {
namespace {

/// An ArrivalProcess subclass the kernel has never heard of: classify()
/// must route it through the virtual fallback, preserving the stream by
/// construction. Draws twice per sample so a kernel that substituted a
/// one-draw approximation would desynchronize every link after it.
class TwoDrawProcess final : public traffic::ArrivalProcess {
 public:
  [[nodiscard]] int sample(Rng& rng) const override {
    const int first = rng.bernoulli(0.5) ? 1 : 0;
    return first + static_cast<int>(rng.uniform_int(0, 2));
  }
  [[nodiscard]] double mean() const override { return 1.5; }
  [[nodiscard]] int max_arrivals() const override { return 3; }
  [[nodiscard]] std::vector<double> pmf() const override {
    return {1.0 / 6, 2.0 / 6, 2.0 / 6, 1.0 / 6};
  }
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<TwoDrawProcess>();
  }
};

/// A mixed per-link process table covering every kernel row kind.
std::vector<std::unique_ptr<traffic::ArrivalProcess>> mixed_processes(std::size_t n,
                                                                      double rate) {
  std::vector<std::unique_ptr<traffic::ArrivalProcess>> procs;
  procs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 5) {
      case 0:
        procs.push_back(std::make_unique<traffic::BernoulliArrivals>(rate));
        break;
      case 1:
        procs.push_back(std::make_unique<traffic::UniformBurstyArrivals>(rate, 1, 6));
        break;
      case 2:
        procs.push_back(std::make_unique<traffic::ConstantArrivals>(2));
        break;
      case 3:
        procs.push_back(std::make_unique<traffic::GeneralDiscreteArrivals>(
            std::vector<double>{1.0 - rate, rate / 2, rate / 2}));
        break;
      default:
        procs.push_back(std::make_unique<TwoDrawProcess>());
        break;
    }
  }
  return procs;
}

/// Drives `kernel` and the scalar loop from identically-seeded Rngs and
/// requires per-draw equality for `intervals` rounds.
void expect_stream_equality(
    const ArrivalKernel& kernel,
    std::span<const std::unique_ptr<traffic::ArrivalProcess>> procs, std::uint64_t seed,
    int intervals) {
  Rng batch_rng{seed, /*stream_id=*/0xA221ULL};
  Rng scalar_rng{seed, /*stream_id=*/0xA221ULL};
  std::vector<int> batch(procs.size());
  for (int k = 0; k < intervals; ++k) {
    kernel.sample_into(batch_rng, batch);
    for (std::size_t n = 0; n < procs.size(); ++n) {
      const int expected = procs[n]->sample(scalar_rng);
      ASSERT_EQ(batch[n], expected)
          << "draw diverged at interval " << k << ", link " << n;
    }
  }
  // The streams must also LAND in the same state: equal values with unequal
  // consumption would desynchronize everything sampled after the arrivals.
  EXPECT_EQ(batch_rng.uniform_int(0, 1 << 30), scalar_rng.uniform_int(0, 1 << 30));
}

TEST(ArrivalKernelTest, MixedTableMatchesScalarAcrossSeedsRatesAndSizes) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 90210ULL}) {
    for (const double rate : {0.1, 0.55, 0.95}) {
      for (const std::size_t links : {1ULL, 7ULL, 64ULL, 1000ULL}) {
        util::Arena arena;
        const auto procs = mixed_processes(links, rate);
        ArrivalKernel kernel;
        kernel.build(procs, arena);
        ASSERT_EQ(kernel.num_links(), links);
        expect_stream_equality(kernel, procs, seed, /*intervals=*/50);
      }
    }
  }
}

TEST(ArrivalKernelTest, UniformBroadcastMatchesScalar) {
  for (const double alpha : {0.2, 0.55, 0.9}) {
    util::Arena arena;
    const traffic::UniformBurstyArrivals proto{alpha, 1, 6};
    constexpr std::size_t kLinks = 333;
    ArrivalKernel kernel;
    kernel.build_uniform(proto, kLinks, arena);
    // The scalar reference: kLinks clones sampled in link order.
    std::vector<std::unique_ptr<traffic::ArrivalProcess>> procs;
    for (std::size_t i = 0; i < kLinks; ++i) procs.push_back(proto.clone());
    expect_stream_equality(kernel, procs, /*seed=*/7, /*intervals=*/100);
  }
}

TEST(ArrivalKernelTest, UniformRowTakesNoPerLinkStorage) {
  util::Arena arena;
  const traffic::BernoulliArrivals proto{0.8};
  ArrivalKernel kernel;
  kernel.build_uniform(proto, 1000000, arena);
  // One broadcast row regardless of the link count: the 10^6-link network
  // must not pay 16 MB of tables for a uniform workload.
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_LT(kernel.memory_bytes(), 1024u);
}

TEST(StaticChannelFastPathTest, CachedBernoulliDrawMatchesVirtualCall) {
  // The Medium caches StaticChannel::probs() and inlines the per-completion
  // loss draw to rng.bernoulli(p[link]), skipping the virtual dispatch. The
  // two must consume the shared loss stream identically for any p and order
  // of links — this is the whole contract the cache rests on.
  for (const std::uint64_t seed : {3ULL, 1889ULL}) {
    ProbabilityVector p;
    for (int i = 0; i < 64; ++i) p.push_back(0.05 + 0.9 * (i / 63.0));
    phy::StaticChannel channel{p};
    Rng virt_rng{seed, /*stream_id=*/0xC0DEULL};
    Rng fast_rng{seed, /*stream_id=*/0xC0DEULL};
    Rng order_rng{seed, /*stream_id=*/0x0EDEULL};
    for (int draw = 0; draw < 5000; ++draw) {
      const auto link = static_cast<LinkId>(order_rng.uniform_int(0, 63));
      const bool virt = channel.attempt_succeeds(link, virt_rng);
      const bool fast = fast_rng.bernoulli(channel.probs()[link]);
      ASSERT_EQ(virt, fast) << "loss stream diverged at draw " << draw;
    }
  }
}

}  // namespace
}  // namespace rtmac::net
