// Full-stack interference-topology tests: NetworkConfig -> Network ->
// Medium -> MAC schemes running on partial conflict graphs.
#include <gtest/gtest.h>

#include <string>

#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "net/network_config.hpp"

namespace rtmac::net {
namespace {

using expfw::control_symmetric;
using expfw::hidden_cells_topology;
using expfw::with_topology;

TEST(TopologyNetworkTest, ConfigValidatesTopologySize) {
  auto cfg = control_symmetric(0.8, 0.99, 7);  // 10 links
  cfg.topology = phy::InterferenceGraph::complete(3);
  std::string error;
  EXPECT_FALSE(cfg.validate(&error));
  EXPECT_NE(error.find("topology"), std::string::npos);
  cfg.topology = phy::InterferenceGraph::complete(10);
  EXPECT_TRUE(cfg.validate(&error));
}

TEST(TopologyNetworkTest, CloneCarriesTheTopology) {
  const auto cfg =
      with_topology(control_symmetric(0.8, 0.99, 7), hidden_cells_topology(10, 5));
  const auto copy = cfg.clone();
  ASSERT_TRUE(copy.topology.has_value());
  EXPECT_FALSE(copy.topology->complete_sensing());
  EXPECT_TRUE(copy.topology->complete_conflicts());
}

TEST(TopologyNetworkTest, NetworkWithoutTopologyUsesCompleteGraph) {
  Network network{control_symmetric(0.8, 0.99, 7), expfw::dbdp_factory()};
  EXPECT_TRUE(network.medium().topology().is_complete());
  network.run(50);
  // The paper's invariant: DP never collides under complete sensing.
  EXPECT_EQ(network.medium().counters().collisions, 0u);
}

TEST(TopologyNetworkTest, DbDpCollidesUnderHiddenCells) {
  Network network{
      with_topology(control_symmetric(0.8, 0.99, 7), hidden_cells_topology(10, 5)),
      expfw::dbdp_factory()};
  EXPECT_FALSE(network.medium().topology().complete_sensing());
  network.run(50);
  // Cross-cell countdowns cannot synchronize: collisions are now a genuine
  // outcome, with at least one cross-cell partner pair in the ledger.
  EXPECT_GT(network.medium().counters().collisions, 0u);
  std::uint64_t cross_cell_pairs = 0;
  for (LinkId a = 0; a < 10; ++a) {
    for (LinkId b = 0; b < 10; ++b) {
      if (a / 5 != b / 5) cross_cell_pairs += network.medium().collision_pair_count(a, b);
    }
  }
  EXPECT_GT(cross_cell_pairs, 0u);
}

TEST(TopologyNetworkTest, FcsmaCollidesMoreWithHiddenTerminals) {
  Network complete{control_symmetric(0.9, 0.99, 11), expfw::fcsma_factory()};
  Network hidden{
      with_topology(control_symmetric(0.9, 0.99, 11), hidden_cells_topology(10, 5)),
      expfw::fcsma_factory()};
  complete.run(200);
  hidden.run(200);
  EXPECT_GT(hidden.medium().counters().collisions,
            complete.medium().counters().collisions);
}

TEST(TopologyNetworkTest, IndependentCellsAllowSpatialReuse) {
  // Two cells with no cross-cell conflicts at all: both cells deliver
  // concurrently, which a complete collision domain cannot do. Aggregate
  // deficiency must not exceed the single-domain run's.
  Network shared{control_symmetric(1.0, 0.99, 13), expfw::dbdp_factory()};
  Network split{
      with_topology(control_symmetric(1.0, 0.99, 13), expfw::two_cell_topology(5, 0)),
      expfw::dbdp_factory()};
  shared.run(200);
  split.run(200);
  EXPECT_LT(split.total_deficiency(), shared.total_deficiency());
}

}  // namespace
}  // namespace rtmac::net
