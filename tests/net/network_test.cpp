#include "net/network.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "expfw/scenarios.hpp"
#include "net/network_config.hpp"
#include "traffic/arrival_process.hpp"

namespace rtmac::net {
namespace {

NetworkConfig small_config(double p = 1.0, std::uint64_t seed = 1) {
  return symmetric_network(4, Duration::milliseconds(20), phy::PhyParams::video_80211a(), p,
                           traffic::ConstantArrivals{1}, 0.9, seed);
}

TEST(NetworkConfigTest, ValidatesGoodConfig) {
  std::string error;
  EXPECT_TRUE(small_config().validate(&error)) << error;
}

TEST(NetworkConfigTest, RejectsSizeMismatch) {
  auto cfg = small_config();
  cfg.success_prob.push_back(0.5);
  std::string error;
  EXPECT_FALSE(cfg.validate(&error));
  EXPECT_FALSE(error.empty());
}

TEST(NetworkConfigTest, RejectsLambdaMismatch) {
  auto cfg = small_config();
  cfg.requirements.lambda[0] = 99.0;
  EXPECT_FALSE(cfg.validate());
}

TEST(NetworkConfigTest, RejectsBadProbability) {
  auto cfg = small_config();
  cfg.success_prob[2] = 0.0;
  EXPECT_FALSE(cfg.validate());
  cfg.success_prob[2] = 1.5;
  EXPECT_FALSE(cfg.validate());
}

TEST(NetworkConfigTest, RejectsTooShortInterval) {
  auto cfg = small_config();
  cfg.interval_length = Duration::microseconds(100);  // < one airtime
  EXPECT_FALSE(cfg.validate());
}

TEST(NetworkConfigTest, CloneIsDeepAndEquivalent) {
  const auto cfg = small_config();
  const auto copy = cfg.clone();
  EXPECT_EQ(copy.success_prob, cfg.success_prob);
  EXPECT_EQ(copy.seed, cfg.seed);
  ASSERT_NE(copy.uniform_arrivals, nullptr);  // symmetric builder emits the uniform form
  EXPECT_NE(copy.uniform_arrivals.get(), cfg.uniform_arrivals.get());
  EXPECT_EQ(copy.uniform_arrivals->pmf(), cfg.uniform_arrivals->pmf());
  EXPECT_TRUE(copy.validate());
}

TEST(NetworkTest, RunsIntervalsAndCollectsStats) {
  Network net{small_config(), expfw::ldf_factory()};
  net.run(50);
  EXPECT_EQ(net.stats().intervals(), 50u);
  for (LinkId n = 0; n < 4; ++n) {
    EXPECT_EQ(net.stats().total_arrivals(n), 50u);
    EXPECT_EQ(net.stats().total_delivered(n), 50u);  // p=1, light load
  }
  EXPECT_DOUBLE_EQ(net.total_deficiency(), 0.0);
}

TEST(NetworkTest, DebtsTrackRequirementMinusDeliveries) {
  Network net{small_config(), expfw::ldf_factory()};
  net.run(10);
  // Every packet delivered: debt = 10*(0.9 - 1) = -1 per link.
  for (LinkId n = 0; n < 4; ++n) EXPECT_NEAR(net.debts().debt(n), -1.0, 1e-9);
}

TEST(NetworkTest, RunIsResumable) {
  Network net{small_config(), expfw::ldf_factory()};
  net.run(5);
  net.run(5);
  EXPECT_EQ(net.stats().intervals(), 10u);
  EXPECT_EQ(net.simulator().now(), TimePoint::origin() + 10 * Duration::milliseconds(20));
}

TEST(NetworkTest, ObserverSeesEveryInterval) {
  Network net{small_config(), expfw::ldf_factory()};
  int calls = 0;
  net.add_observer([&](IntervalIndex k, std::span<const int> arrivals,
                       std::span<const int> delivered) {
    EXPECT_EQ(k, static_cast<IntervalIndex>(calls));
    EXPECT_EQ(arrivals.size(), 4u);
    EXPECT_EQ(delivered.size(), 4u);
    ++calls;
  });
  net.run(7);
  EXPECT_EQ(calls, 7);
}

TEST(NetworkTest, DeterministicReplayUnderSameSeed) {
  Network a{small_config(0.7, 123), expfw::dbdp_factory()};
  Network b{small_config(0.7, 123), expfw::dbdp_factory()};
  a.run(100);
  b.run(100);
  for (LinkId n = 0; n < 4; ++n) {
    EXPECT_EQ(a.stats().total_delivered(n), b.stats().total_delivered(n));
  }
  EXPECT_EQ(a.medium().counters().data_tx, b.medium().counters().data_tx);
}

TEST(NetworkTest, DifferentSeedsDiverge) {
  Network a{small_config(0.7, 1), expfw::dbdp_factory()};
  Network b{small_config(0.7, 2), expfw::dbdp_factory()};
  a.run(100);
  b.run(100);
  EXPECT_NE(a.medium().counters().channel_losses, b.medium().counters().channel_losses);
}

TEST(NetworkTest, OverloadedNetworkAccumulatesDeficiency) {
  // 4 links x 1 packet but interval fits only 2 packets: deficiency stays
  // bounded away from zero.
  auto cfg = symmetric_network(4, Duration::microseconds(700),
                               phy::PhyParams::video_80211a(), 1.0,
                               traffic::ConstantArrivals{1}, 0.9, 3);
  Network net{std::move(cfg), expfw::ldf_factory()};
  net.run(200);
  // Capacity 2 of 3.6 required => total deficiency ~ 1.6.
  EXPECT_NEAR(net.total_deficiency(), 1.6, 0.1);
}

TEST(NetworkTest, SchemeNameExposed) {
  Network net{small_config(), expfw::dbdp_factory()};
  EXPECT_EQ(net.scheme().name(), "DB-DP");
}

}  // namespace
}  // namespace rtmac::net
