// Sharded-engine equivalence tests (DESIGN §4i): on partitionable
// topologies the sharded Network must reproduce the legacy single-engine
// run exactly — same per-interval deliveries, same debts, same channel
// accounting, same collision ledger — for any shard count, because every
// RNG stream is keyed by global link id and cut resolution is exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "net/network_config.hpp"
#include "obs/collect.hpp"
#include "obs/metrics.hpp"
#include "phy/interference.hpp"
#include "traffic/arrival_process.hpp"
#include "util/check.hpp"

namespace rtmac::net {
namespace {

constexpr IntervalIndex kIntervals = 60;

/// Everything observable about a finished run, keyed by GLOBAL link id.
struct RunRecord {
  std::vector<int> delivered_series;  ///< flattened [interval][link]
  std::vector<double> debts;
  std::vector<std::uint64_t> link_data_tx;
  std::vector<std::uint64_t> link_collisions;
  std::vector<std::uint64_t> pair_counts;  ///< flattened [a][b]
  std::uint64_t collisions = 0;
  std::uint64_t delivered = 0;
  std::uint64_t channel_losses = 0;
  std::string metrics_jsonl;

  friend bool operator==(const RunRecord&, const RunRecord&) = default;
};

/// Field-by-field comparison with a readable first-difference report.
void expect_same_run(const RunRecord& a, const RunRecord& b, const std::string& label) {
  EXPECT_EQ(a.delivered_series, b.delivered_series) << label << ": per-interval deliveries";
  EXPECT_EQ(a.debts, b.debts) << label << ": final debts";
  EXPECT_EQ(a.link_data_tx, b.link_data_tx) << label << ": per-link data_tx";
  EXPECT_EQ(a.link_collisions, b.link_collisions) << label << ": per-link collisions";
  EXPECT_EQ(a.pair_counts, b.pair_counts) << label << ": collision pair ledger";
  EXPECT_EQ(a.collisions, b.collisions) << label;
  EXPECT_EQ(a.delivered, b.delivered) << label;
  EXPECT_EQ(a.channel_losses, b.channel_losses) << label;
  if (a.metrics_jsonl != b.metrics_jsonl) {
    std::istringstream la{a.metrics_jsonl};
    std::istringstream lb{b.metrics_jsonl};
    std::string x;
    std::string y;
    std::size_t line = 1;
    while (true) {
      const bool ga = static_cast<bool>(std::getline(la, x));
      const bool gb = static_cast<bool>(std::getline(lb, y));
      if (!ga && !gb) break;
      ASSERT_EQ(ga ? x : "<eof>", gb ? y : "<eof>")
          << label << ": metrics line " << line;
      ++line;
    }
  }
}

RunRecord run_network(NetworkConfig config, const mac::SchemeFactory& factory,
                      IntervalIndex intervals = kIntervals) {
  Network network{std::move(config), factory};
  RunRecord rec;
  network.add_observer([&rec](IntervalIndex, std::span<const int>, std::span<const int> d) {
    rec.delivered_series.insert(rec.delivered_series.end(), d.begin(), d.end());
  });
  obs::MetricsRegistry registry;
  network.attach_metrics(&registry);
  network.run(intervals);

  const std::size_t n = network.config().num_links();
  for (LinkId l = 0; l < n; ++l) {
    rec.debts.push_back(network.debts().debt(l));
    rec.link_data_tx.push_back(network.link_counters(l).data_tx);
    rec.link_collisions.push_back(network.link_counters(l).collisions);
    for (LinkId o = 0; o < n; ++o) rec.pair_counts.push_back(network.collision_pair_count(l, o));
  }
  const phy::MediumCounters counters = network.medium_counters();
  rec.collisions = counters.collisions;
  rec.delivered = counters.delivered;
  rec.channel_losses = counters.channel_losses;

  // End-of-run metric export via the facades (exercises per-cell registry
  // merging on the sharded path); JSONL is name-ordered and deterministic.
  // Engine-shape metrics (cell/group counts, event totals) legitimately
  // depend on which engine ran, so they are stripped before comparing.
  obs::collect_network_metrics(registry, network);
  std::ostringstream jsonl;
  registry.write_jsonl(jsonl);
  std::istringstream lines{jsonl.str()};
  for (std::string line; std::getline(lines, line);) {
    // The busy-window metrics are the one semantic difference: legacy
    // reports the union busy time/periods of the single global channel;
    // per-cell media report each collision domain's own windows, and
    // simultaneous windows of independent domains cannot be re-unioned
    // from aggregate durations.
    static constexpr const char* kEngineShape[] = {
        "net.cells",           "net.groups",
        "sim.coordinator_rounds", "sim.events_executed",
        "engine.events.reallocs", "phy.busy_fraction",
        "phy.busy_period_us",
        // Arena layout (and hence byte accounting) legitimately differs
        // between the legacy and per-cell engines, and the DP batch path is
        // an engine-shape property: clique cells keep complete sensing and
        // take it even when the legacy global view cannot. The freeze
        // diagnostics follow the path (scalar records exact per-link freeze
        // spans; the batch kernel broadcasts the domain-wide span).
        "mem.", "mac.dp.batch_path",
        "mac.freeze_ns", "mac.backoff_freeze_us"};
    const auto is_shape = [&line](const char* name) {
      return line.find(name) != std::string::npos;
    };
    if (std::any_of(std::begin(kEngineShape), std::end(kEngineShape), is_shape)) continue;
    rec.metrics_jsonl += line;
    rec.metrics_jsonl += '\n';
  }
  return rec;
}

NetworkConfig cells_config(std::uint64_t seed, std::size_t shards,
                           std::size_t num_links = 12, std::size_t cell_size = 4) {
  auto cfg = net::symmetric_network(num_links, Duration::milliseconds(2),
                                    phy::PhyParams::control_80211a(), 0.7,
                                    traffic::BernoulliArrivals{0.8}, 0.9, seed);
  cfg.topology = expfw::disconnected_cells_topology(num_links, cell_size);
  cfg.shards = shards;
  return cfg;
}

// ---- engine selection -------------------------------------------------------

TEST(ShardedNetworkTest, CompleteTopologyFallsBackToTheLegacyEngine) {
  auto cfg = expfw::control_symmetric(0.8, 0.99, 7);
  cfg.shards = 4;  // complete graph -> one clique cell -> trivial plan
  Network network{std::move(cfg), expfw::dcf_factory()};
  EXPECT_FALSE(network.sharded());
  EXPECT_EQ(network.cell_count(), 1U);
}

TEST(ShardedNetworkTest, DisconnectedCellsShardIntoOneEnginePerCell) {
  Network network{cells_config(11, /*shards=*/3), expfw::dcf_factory()};
  ASSERT_TRUE(network.sharded());
  EXPECT_EQ(network.cell_count(), 3U);
  EXPECT_EQ(network.group_count(), 3U);
  EXPECT_EQ(network.coordinator_rounds(), 0U);  // no cuts -> no coordinator
  EXPECT_EQ(network.cell_links(1).size(), 4U);
  EXPECT_EQ(network.cell_links(1)[0], 4U);
  network.run(5);
  EXPECT_EQ(network.now(), TimePoint::origin() + 5 * network.config().interval_length);
}

// ---- byte-identical results across engines and shard counts -----------------

TEST(ShardedNetworkTest, ShardedRunMatchesLegacyOnDisconnectedCells) {
  struct Case {
    const char* name;
    mac::SchemeFactory factory;
  };
  const Case cases[] = {{"DCF", expfw::dcf_factory()},
                        {"FCSMA", expfw::fcsma_factory()},
                        {"DB-DP", expfw::dbdp_factory()}};
  for (const Case& c : cases) {
    const auto legacy = run_network(cells_config(21, /*shards=*/0), c.factory);
    const auto sharded = run_network(cells_config(21, /*shards=*/3), c.factory);
    expect_same_run(legacy, sharded, c.name);
    EXPECT_GT(legacy.delivered, 0U) << c.name;
  }
}

TEST(ShardedNetworkTest, ResultsAreIndependentOfShardCountAndWorkerCount) {
  const auto base = run_network(cells_config(33, /*shards=*/1), expfw::dcf_factory());
  for (const std::size_t shards : {2UL, 3UL, 6UL}) {
    for (const std::size_t jobs : {1UL, 4UL}) {
      auto cfg = cells_config(33, shards);
      cfg.shard_jobs = jobs;
      EXPECT_EQ(base, run_network(std::move(cfg), expfw::dcf_factory()))
          << "shards=" << shards << " jobs=" << jobs;
    }
  }
}

TEST(ShardedNetworkTest, SparseTopologyMatchesItsDenseEquivalent) {
  // The same disconnected-cells relation expressed as adjacency lists must
  // produce identical results through the sparse construction path.
  const auto dense = run_network(cells_config(55, /*shards=*/3), expfw::fcsma_factory());

  constexpr std::size_t kNumLinks = 12;
  constexpr std::size_t kCellSize = 4;
  phy::SparseTopology sparse;
  sparse.num_links = kNumLinks;
  sparse.conflict.resize(kNumLinks);
  sparse.sense.resize(kNumLinks);
  for (LinkId a = 0; a < kNumLinks; ++a) {
    for (LinkId b = 0; b < kNumLinks; ++b) {
      if (a == b || a / kCellSize != b / kCellSize) continue;
      sparse.conflict[a].push_back(b);
      sparse.sense[a].push_back(b);
    }
  }
  auto cfg = cells_config(55, /*shards=*/3);
  cfg.topology.reset();
  cfg = expfw::with_sparse_topology(std::move(cfg), std::move(sparse));
  EXPECT_EQ(dense, run_network(std::move(cfg), expfw::fcsma_factory()));
}

// ---- cross-shard hidden terminal (conflict cut without sensing) -------------

/// Four links on a line, built with the geometric unit-disk rule: {0,1} and
/// {2,3} are carrier-sense cliques; (1,2) conflict at the receivers but
/// cannot hear each other — a hidden-terminal pair that a 2-shard partition
/// must place on the conflict cut with NO sense cut.
phy::InterferenceGraph hidden_cut_unit_disk() {
  using P = phy::InterferenceGraph::LinkPlacement;
  const std::vector<P> links = {
      P{{0.0, 0.0}, {0.5, 0.0}},  // link 0
      P{{2.0, 0.0}, {1.5, 0.0}},  // link 1
      P{{5.0, 0.0}, {5.5, 0.0}},  // link 2
      P{{7.0, 0.0}, {6.5, 0.0}},  // link 3
  };
  return phy::InterferenceGraph::unit_disk(links, /*interference_range=*/3.6,
                                           /*sense_range=*/2.2);
}

NetworkConfig hidden_cut_config(std::uint64_t seed, std::size_t shards) {
  auto cfg = net::symmetric_network(4, Duration::milliseconds(2),
                                    phy::PhyParams::control_80211a(), 0.7,
                                    traffic::BernoulliArrivals{0.9}, 0.9, seed);
  cfg.topology = hidden_cut_unit_disk();
  cfg.shards = shards;
  return cfg;
}

TEST(ShardedNetworkTest, HiddenCutPairIsAConflictCutWithoutSensing) {
  const auto g = hidden_cut_unit_disk();
  EXPECT_TRUE(g.conflicts(1, 2));
  EXPECT_FALSE(g.senses(1, 2));
  EXPECT_FALSE(g.senses(2, 1));
  EXPECT_TRUE(g.senses(0, 1));
  EXPECT_TRUE(g.senses(2, 3));
  EXPECT_FALSE(g.conflicts(0, 2));
  EXPECT_FALSE(g.conflicts(0, 3));
  EXPECT_FALSE(g.conflicts(1, 3));

  Network network{hidden_cut_config(42, /*shards=*/2), expfw::dcf_factory()};
  ASSERT_TRUE(network.sharded());
  EXPECT_EQ(network.cell_count(), 2U);
  EXPECT_EQ(network.cell_links(0).size(), 2U);
  network.run(3);
  EXPECT_GT(network.coordinator_rounds(), 0U);  // the cut engages the coordinator
}

TEST(ShardedNetworkTest, CrossShardHiddenTerminalLedgerMatchesTheLegacyEngine) {
  // shards=1 keeps the union-connected 4-link graph in one cell -> trivial
  // plan -> legacy engine; shards=2 puts the hidden pair on the cut. The
  // collision ledgers (and everything else) must agree exactly, and the
  // hidden pair must actually collide or the test proves nothing.
  const auto legacy = run_network(hidden_cut_config(42, /*shards=*/1), expfw::dcf_factory());
  const auto sharded = run_network(hidden_cut_config(42, /*shards=*/2), expfw::dcf_factory());
  expect_same_run(legacy, sharded, "hidden-cut");
  const std::size_t n = 4;
  EXPECT_GT(legacy.pair_counts[1 * n + 2], 0U) << "hidden pair never collided";
  EXPECT_EQ(legacy.pair_counts[1 * n + 2], sharded.pair_counts[2 * n + 1]);
}

// ---- guard rails ------------------------------------------------------------

TEST(ShardedNetworkTest, LegacyAccessorsAbortOnShardedNetworks) {
  if (!kChecksEnabled) GTEST_SKIP() << "contract checks compiled out";
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Network network{cells_config(5, /*shards=*/2), expfw::dcf_factory()};
  ASSERT_TRUE(network.sharded());
  EXPECT_DEATH((void)network.medium(), "per-cell");
  EXPECT_DEATH((void)network.simulator(), "per-cell");
}

TEST(ShardedNetworkTest, ValidationRejectsSparseWithoutShardsAndCustomChannels) {
  auto cfg = cells_config(5, /*shards=*/0);
  cfg.topology.reset();
  phy::SparseTopology sparse;
  sparse.num_links = 12;
  sparse.conflict.resize(12);
  sparse.sense.resize(12);
  cfg.sparse_topology = std::make_shared<const phy::SparseTopology>(std::move(sparse));
  std::string error;
  EXPECT_FALSE(cfg.validate(&error));
  EXPECT_NE(error.find("sharded engine"), std::string::npos);
  cfg.shards = 2;
  EXPECT_TRUE(cfg.validate(&error)) << error;
}

}  // namespace
}  // namespace rtmac::net
