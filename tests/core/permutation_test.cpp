#include "core/permutation.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/rng.hpp"

namespace rtmac::core {
namespace {

TEST(PermutationTest, IdentityAssignsSequentialPriorities) {
  const auto p = Permutation::identity(4);
  for (LinkId n = 0; n < 4; ++n) EXPECT_EQ(p.priority_of(n), n + 1);
  EXPECT_TRUE(p.valid());
}

TEST(PermutationTest, FromPrioritiesAndOrderingAgree) {
  // Paper Example 1 vector form: sigma = [2,1,4,3].
  const auto p = Permutation::from_priorities({2, 1, 4, 3});
  EXPECT_EQ(p.link_with_priority(1), 1u);
  EXPECT_EQ(p.link_with_priority(2), 0u);
  EXPECT_EQ(p.link_with_priority(3), 3u);
  EXPECT_EQ(p.link_with_priority(4), 2u);
  const auto order = p.ordering();
  EXPECT_EQ(order, (std::vector<LinkId>{1, 0, 3, 2}));
  EXPECT_EQ(Permutation::from_ordering(order), p);
}

TEST(PermutationTest, ToStringVectorForm) {
  EXPECT_EQ(Permutation::from_priorities({2, 1, 4, 3}).to_string(), "[2,1,4,3]");
}

TEST(PermutationTest, SwapAdjacentPriorities) {
  // sigma = [2,1,4,3]: link 0 holds priority 2 and link 3 holds priority 3;
  // the adjacent transposition at priority 2 exchanges those two links.
  auto p = Permutation::from_priorities({2, 1, 4, 3});
  p.swap_adjacent_priorities(2);
  EXPECT_EQ(p, Permutation::from_priorities({3, 1, 4, 2}));
  EXPECT_TRUE(p.valid());
}

TEST(PermutationTest, SymmetricDifference) {
  const auto a = Permutation::from_priorities({2, 1, 4, 3});
  const auto b = Permutation::from_priorities({2, 4, 1, 3});
  // Links 1 and 2 differ (paper Example 1 reports positions {2,3} 1-based).
  EXPECT_EQ(a.symmetric_difference(b), (std::vector<LinkId>{1, 2}));
  EXPECT_TRUE(a.symmetric_difference(a).empty());
}

TEST(PermutationTest, IsAdjacentTranspositionDetects) {
  const auto a = Permutation::from_priorities({2, 1, 4, 3});
  auto b = a;
  b.swap_adjacent_priorities(3);
  PriorityIndex m = 0;
  EXPECT_TRUE(a.is_adjacent_transposition_of(b, &m));
  EXPECT_EQ(m, 3u);
  EXPECT_FALSE(a.is_adjacent_transposition_of(a));
}

TEST(PermutationTest, NonAdjacentSwapRejected) {
  auto a = Permutation::identity(4);
  // Swap priorities 1 and 3 (non-adjacent): links 0 and 2.
  const auto b = Permutation::from_priorities({3, 2, 1, 4});
  EXPECT_FALSE(a.is_adjacent_transposition_of(b));
}

TEST(PermutationTest, RankUnrankRoundTrip) {
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u}) {
    std::uint64_t fact = 1;
    for (std::size_t i = 2; i <= n; ++i) fact *= i;
    std::set<std::uint64_t> seen;
    for (std::uint64_t r = 0; r < fact; ++r) {
      const auto p = Permutation::unrank(n, r);
      EXPECT_TRUE(p.valid());
      EXPECT_EQ(p.rank(), r);
      seen.insert(r);
    }
    EXPECT_EQ(seen.size(), fact);
  }
}

TEST(PermutationTest, AllEnumeratesDistinctPermutations) {
  const auto perms = Permutation::all(4);
  EXPECT_EQ(perms.size(), 24u);
  std::set<std::string> distinct;
  for (const auto& p : perms) {
    EXPECT_TRUE(p.valid());
    distinct.insert(p.to_string());
  }
  EXPECT_EQ(distinct.size(), 24u);
}

TEST(PermutationTest, RandomIsUniform) {
  Rng rng{1234};
  std::map<std::uint64_t, int> counts;
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) counts[Permutation::random(3, rng).rank()]++;
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(count / static_cast<double>(kN), 1.0 / 6.0, 0.01) << "rank " << rank;
  }
}

TEST(PermutationTest, ValidRejectsBadVectors) {
  // Duplicate priority.
  const std::vector<PriorityIndex> dup{1, 1, 3};
  // Out-of-range priority.
  const std::vector<PriorityIndex> range{0, 1, 2};
  // Construct via identity then poke through from_ordering is impossible;
  // use a default-constructed check helper instead.
  auto check = [](std::vector<PriorityIndex> v) {
    // from_priorities asserts in debug; replicate the validity predicate.
    std::vector<bool> seen(v.size(), false);
    for (auto pr : v) {
      if (pr < 1 || pr > v.size() || seen[pr - 1]) return false;
      seen[pr - 1] = true;
    }
    return true;
  };
  EXPECT_FALSE(check(dup));
  EXPECT_FALSE(check(range));
  EXPECT_TRUE(check({2, 1, 3}));
}

TEST(PermutationTest, SwapIsInvolution) {
  Rng rng{5};
  for (int trial = 0; trial < 50; ++trial) {
    auto p = Permutation::random(6, rng);
    const auto original = p;
    const auto m = static_cast<PriorityIndex>(rng.uniform_int(1, 5));
    p.swap_adjacent_priorities(m);
    EXPECT_NE(p, original);
    p.swap_adjacent_priorities(m);
    EXPECT_EQ(p, original);
  }
}

}  // namespace
}  // namespace rtmac::core
