#include "core/debt.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace rtmac::core {
namespace {

TEST(DebtTrackerTest, StartsAtZero) {
  DebtTracker debt{{0.9, 0.5}};
  EXPECT_DOUBLE_EQ(debt.debt(0), 0.0);
  EXPECT_DOUBLE_EQ(debt.debt(1), 0.0);
  EXPECT_EQ(debt.intervals_elapsed(), 0u);
  EXPECT_EQ(debt.size(), 2u);
}

TEST(DebtTrackerTest, EquationOneSingleStep) {
  // d(k+1) = d(k) - S(k) + q.
  DebtTracker debt{{0.9}};
  debt.on_interval_end({0});
  EXPECT_DOUBLE_EQ(debt.debt(0), 0.9);
  debt.on_interval_end({1});
  EXPECT_NEAR(debt.debt(0), 0.8, 1e-12);
  debt.on_interval_end({2});
  EXPECT_NEAR(debt.debt(0), -0.3, 1e-12);
}

TEST(DebtTrackerTest, ClosedFormIdentity) {
  // d_n(k) = k*q_n - sum_j S_n(j) for random delivery sequences.
  Rng rng{17};
  DebtTracker debt{{0.73, 0.2}};
  long s0 = 0;
  long s1 = 0;
  for (int k = 1; k <= 500; ++k) {
    const int a = static_cast<int>(rng.uniform_int(0, 3));
    const int b = static_cast<int>(rng.uniform_int(0, 1));
    s0 += a;
    s1 += b;
    debt.on_interval_end({a, b});
    EXPECT_NEAR(debt.debt(0), k * 0.73 - static_cast<double>(s0), 1e-9);
    EXPECT_NEAR(debt.debt(1), k * 0.2 - static_cast<double>(s1), 1e-9);
  }
  EXPECT_EQ(debt.intervals_elapsed(), 500u);
}

TEST(DebtTrackerTest, PositivePart) {
  DebtTracker debt{{0.5}};
  debt.on_interval_end({3});  // debt = -2.5
  EXPECT_DOUBLE_EQ(debt.debt(0), -2.5);
  EXPECT_DOUBLE_EQ(debt.debt_plus(0), 0.0);
  debt.on_interval_end({0});
  debt.on_interval_end({0});
  debt.on_interval_end({0});
  debt.on_interval_end({0});
  debt.on_interval_end({0});  // debt = -2.5 + 5*0.5 = 0
  EXPECT_NEAR(debt.debt(0), 0.0, 1e-12);
  debt.on_interval_end({0});
  EXPECT_NEAR(debt.debt_plus(0), 0.5, 1e-12);
}

TEST(DebtTrackerTest, DebtsPlusVector) {
  DebtTracker debt{{1.0, 0.0}};
  debt.on_interval_end({0, 1});
  const auto dp = debt.debts_plus();
  EXPECT_DOUBLE_EQ(dp[0], 1.0);
  EXPECT_DOUBLE_EQ(dp[1], 0.0);  // debt is -1, clipped
}

TEST(DebtTrackerTest, LinfNorm) {
  DebtTracker debt{{1.0, 0.1}};
  debt.on_interval_end({0, 3});  // d = (1.0, -2.9)
  EXPECT_NEAR(debt.linf(), 2.9, 1e-12);
}

TEST(DebtTrackerTest, ResetClearsState) {
  DebtTracker debt{{0.9}};
  debt.on_interval_end({0});
  debt.reset();
  EXPECT_DOUBLE_EQ(debt.debt(0), 0.0);
  EXPECT_EQ(debt.intervals_elapsed(), 0u);
}

TEST(DebtTrackerTest, RequirementsAccessors) {
  DebtTracker debt{{0.7, 0.3}};
  EXPECT_DOUBLE_EQ(debt.requirement(0), 0.7);
  EXPECT_DOUBLE_EQ(debt.requirement(1), 0.3);
  EXPECT_EQ(debt.requirements().size(), 2u);
}

}  // namespace
}  // namespace rtmac::core
