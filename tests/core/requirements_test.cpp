#include "core/requirements.hpp"

#include <gtest/gtest.h>

namespace rtmac::core {
namespace {

TEST(RequirementsTest, QIsRhoTimesLambda) {
  const Requirements req{{3.5 * 0.55, 0.78}, {0.9, 0.99}};
  const auto q = req.q();
  ASSERT_EQ(q.size(), 2u);
  EXPECT_NEAR(q[0], 3.5 * 0.55 * 0.9, 1e-12);
  EXPECT_NEAR(q[1], 0.78 * 0.99, 1e-12);
}

TEST(RequirementsTest, SymmetricBuilder) {
  const auto req = Requirements::symmetric(20, 1.925, 0.9);
  EXPECT_EQ(req.size(), 20u);
  for (std::size_t n = 0; n < 20; ++n) {
    EXPECT_DOUBLE_EQ(req.lambda[n], 1.925);
    EXPECT_DOUBLE_EQ(req.rho[n], 0.9);
  }
}

TEST(WorkloadUtilizationTest, SimpleCase) {
  // q = 0.5 deliveries/interval at p = 0.5 costs 1 transmission/interval.
  // With 2 transmissions available: utilization 0.5.
  EXPECT_NEAR(workload_utilization({0.5}, {0.5}, 2), 0.5, 1e-12);
}

TEST(WorkloadUtilizationTest, PaperVideoScenarioIsNearCritical) {
  // Fig. 3: 20 links, lambda = 3.5*alpha, rho = 0.9, p = 0.7, 60 slots.
  // At the paper's reported knee alpha* ~ 0.62 the mean-workload utilization
  // is ~ 0.93: close to but below 1, because bursty arrivals waste capacity
  // in light intervals that cannot be banked for heavy ones.
  const double alpha = 0.62;
  const RateVector q(20, 3.5 * alpha * 0.9);
  const ProbabilityVector p(20, 0.7);
  const double util = workload_utilization(q, p, 60);
  EXPECT_NEAR(util, 20.0 * 3.5 * alpha * 0.9 / 0.7 / 60.0, 1e-12);
  EXPECT_NEAR(util, 0.93, 0.01);
  EXPECT_LT(util, 1.0);
}

TEST(WorkloadUtilizationTest, PaperControlScenarioIsNearCritical) {
  // Fig. 9: 10 links, Bernoulli(lambda), rho = 0.99, p = 0.7, 16 slots.
  // The knee near lambda* ~ 0.78: utilization ~ 0.689... wait, compute:
  // 10 * 0.78 * 0.99 / 0.7 / 16 = 0.689. The knee is instead pinned by the
  // 99th-percentile retransmission demand, not the mean bound — which is why
  // this check only asserts the bound is satisfied (necessary, not tight).
  const RateVector q(10, 0.78 * 0.99);
  const ProbabilityVector p(10, 0.7);
  EXPECT_LT(workload_utilization(q, p, 16), 1.0);
}

TEST(WorkloadUtilizationTest, InfeasibleLoadExceedsOne) {
  const RateVector q(20, 3.5 * 0.9 * 0.9);  // alpha = 0.9: way past the knee
  const ProbabilityVector p(20, 0.7);
  EXPECT_GT(workload_utilization(q, p, 60), 1.0);
}

TEST(WorkloadUtilizationTest, HeterogeneousLinks) {
  EXPECT_NEAR(workload_utilization({0.5, 0.8}, {0.5, 0.8}, 4), (1.0 + 1.0) / 4.0, 1e-12);
}

}  // namespace
}  // namespace rtmac::core
