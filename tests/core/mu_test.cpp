#include "core/mu.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rtmac::core {
namespace {

DebtMu paper_mu() { return DebtMu{Influence::paper_log(), 10.0}; }

TEST(DebtMuTest, MatchesEquation14) {
  // mu = exp(f(d+)p) / (R + exp(f(d+)p)) with f = ln(max{1,100(x+1)}), R=10.
  const DebtMu m = paper_mu();
  const double d = 2.0;
  const double p = 0.7;
  const double w = std::log(100.0 * 3.0) * 0.7;
  EXPECT_NEAR(m.mu(d, p), std::exp(w) / (10.0 + std::exp(w)), 1e-12);
}

TEST(DebtMuTest, WeightUsesPositivePart) {
  const DebtMu m = paper_mu();
  EXPECT_DOUBLE_EQ(m.weight(-5.0, 0.7), m.weight(0.0, 0.7));
  EXPECT_GT(m.weight(1.0, 0.7), m.weight(0.0, 0.7));
}

TEST(DebtMuTest, MuIncreasesWithDebt) {
  const DebtMu m = paper_mu();
  double prev = 0.0;
  for (double d = 0.0; d < 100.0; d += 5.0) {
    const double mu = m.mu(d, 0.7);
    EXPECT_GT(mu, prev);
    prev = mu;
  }
}

TEST(DebtMuTest, MuIncreasesWithReliability) {
  const DebtMu m = paper_mu();
  EXPECT_GT(m.mu(5.0, 0.9), m.mu(5.0, 0.5));
}

TEST(DebtMuTest, MuStaysInOpenUnitInterval) {
  const DebtMu m = paper_mu();
  for (double d : {-10.0, 0.0, 1.0, 100.0, 1e6, 1e12}) {
    const double mu = m.mu(d, 0.7);
    EXPECT_GT(mu, 0.0) << d;
    EXPECT_LT(mu, 1.0) << d;
    EXPECT_TRUE(std::isfinite(mu)) << d;
  }
}

TEST(DebtMuTest, HugeDebtSaturatesTowardOneWithoutOverflow) {
  const DebtMu m{Influence::identity(), 10.0};
  const double mu = m.mu(1e9, 1.0);  // exp(1e9) would overflow naively
  EXPECT_TRUE(std::isfinite(mu));
  EXPECT_NEAR(mu, 1.0, 1e-12);
}

TEST(DebtMuTest, OddsIdentity) {
  // mu/(1-mu) must equal exp(f(d+)p)/R — the quantity whose powers form the
  // stationary law (eq. 10 vs eq. 15).
  const DebtMu m = paper_mu();
  for (double d : {0.0, 1.0, 7.0}) {
    const double mu = m.mu(d, 0.7);
    EXPECT_NEAR(mu / (1.0 - mu), m.odds(d, 0.7), 1e-9) << d;
  }
}

TEST(DebtMuTest, LargerRIsMoreConservative) {
  const DebtMu small_r{Influence::paper_log(), 1.0};
  const DebtMu large_r{Influence::paper_log(), 100.0};
  EXPECT_GT(small_r.mu(1.0, 0.7), large_r.mu(1.0, 0.7));
}

TEST(DebtMuTest, ZeroDebtZeroWeightInfluence) {
  // With identity influence and zero debt: mu = 1/(1+R).
  const DebtMu m{Influence::identity(), 10.0};
  EXPECT_NEAR(m.mu(0.0, 0.7), 1.0 / 11.0, 1e-12);
}

}  // namespace
}  // namespace rtmac::core
