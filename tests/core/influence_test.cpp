#include "core/influence.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rtmac::core {
namespace {

TEST(InfluenceTest, IdentityIsX) {
  const Influence f = Influence::identity();
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f(3.7), 3.7);
  EXPECT_EQ(f.name(), "identity");
}

TEST(InfluenceTest, PowerFunction) {
  const Influence f = Influence::power(2.0);
  EXPECT_DOUBLE_EQ(f(3.0), 9.0);
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
}

TEST(InfluenceTest, PowerZeroIsConstantOne) {
  const Influence f = Influence::power(0.0);
  EXPECT_DOUBLE_EQ(f(5.0), 1.0);
  EXPECT_DOUBLE_EQ(f(100.0), 1.0);
}

TEST(InfluenceTest, LogFunction) {
  const Influence f = Influence::log(2.0);
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_NEAR(f(1.0), 1.0, 1e-12);   // log2(2)
  EXPECT_NEAR(f(3.0), 2.0, 1e-12);   // log2(4)
}

TEST(InfluenceTest, PaperLogMatchesFormula) {
  // f(x) = ln(max{1, 100(x+1)}).
  const Influence f = Influence::paper_log();
  EXPECT_NEAR(f(0.0), std::log(100.0), 1e-12);
  EXPECT_NEAR(f(1.0), std::log(200.0), 1e-12);
  EXPECT_NEAR(f(9.0), std::log(1000.0), 1e-12);
}

TEST(InfluenceTest, PaperLogClampsAtZero) {
  // With a tiny scale the argument can fall below 1; f must clamp to 0
  // to stay nonnegative.
  const Influence f = Influence::paper_log(0.01);
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_GT(f(1000.0), 0.0);
}

// ---- Definition 6 axioms ----------------------------------------------------

TEST(InfluenceAxiomsTest, IdentitySatisfiesAxioms) {
  EXPECT_TRUE(check_influence_axioms(Influence::identity()).all());
}

TEST(InfluenceAxiomsTest, PowersSatisfyAxioms) {
  for (double m : {0.5, 1.0, 2.0, 3.0}) {
    const auto report = check_influence_axioms(Influence::power(m));
    EXPECT_TRUE(report.all()) << "x^" << m;
  }
}

TEST(InfluenceAxiomsTest, LogsSatisfyAxioms) {
  for (double base : {2.0, 10.0}) {
    EXPECT_TRUE(check_influence_axioms(Influence::log(base)).all()) << "base " << base;
  }
}

TEST(InfluenceAxiomsTest, PaperLogSatisfiesAxioms) {
  EXPECT_TRUE(check_influence_axioms(Influence::paper_log()).all());
}

TEST(InfluenceAxiomsTest, ExponentialViolatesShiftInsensitivity) {
  // The paper's counterexample: f(x) = a^x with a > 1 is NOT a debt
  // influence function because f(x+c)/f(x) = a^c != 1.
  const Influence exp2{"2^x", [](double x) { return std::pow(2.0, x); }};
  // Use a small x_max so 2^x stays finite.
  const auto report = check_influence_axioms(exp2, /*x_max=*/500.0, /*c=*/10.0);
  EXPECT_FALSE(report.shift_insensitive);
  EXPECT_TRUE(report.nondecreasing);
}

TEST(InfluenceAxiomsTest, DecreasingFunctionFlagged) {
  const Influence dec{"1/(1+x)", [](double x) { return 1.0 / (1.0 + x); }};
  const auto report = check_influence_axioms(dec);
  EXPECT_FALSE(report.nondecreasing);
  EXPECT_FALSE(report.diverges);
}

TEST(InfluenceAxiomsTest, NegativeFunctionFlagged) {
  const Influence neg{"x-5", [](double x) { return x - 5.0; }};
  EXPECT_FALSE(check_influence_axioms(neg).nonnegative);
}

}  // namespace
}  // namespace rtmac::core
