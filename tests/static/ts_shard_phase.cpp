// Negative-compile case: calling a barrier-phase-only function from code
// that does not hold the sim::shard_barrier phantom capability — exactly
// what a stray cross-shard access from the parallel phase would look like.
// Must trip clang -Wthread-safety ("requires holding role").
#include "sim/shard_barrier.hpp"

namespace {

int g_mailbox RTMAC_GUARDED_BY(rtmac::sim::shard_barrier) = 0;

void deliver() RTMAC_REQUIRES(rtmac::sim::shard_barrier) { ++g_mailbox; }

void parallel_phase_task() {
  deliver();  // BAD: only the coordinator's serial barrier section may call
}

}  // namespace

int main() {
  parallel_phase_task();
  return 0;
}
