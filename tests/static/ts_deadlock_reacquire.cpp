// Negative-compile case: acquiring a mutex the caller already holds — the
// simplest self-deadlock. Must trip clang -Wthread-safety ("that is already
// held").
#include "util/thread_annotations.hpp"

namespace {

rtmac::util::Mutex g_mutex;

void double_lock() {
  g_mutex.lock();
  g_mutex.lock();  // BAD: re-acquiring a held mutex deadlocks std::mutex
  g_mutex.unlock();
  g_mutex.unlock();
}

}  // namespace

int main() {
  double_lock();
  return 0;
}
