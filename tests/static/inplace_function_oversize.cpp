// Negative-compile case: an InplaceFunction capture larger than the inline
// capacity. Unlike std::function (which would silently heap-allocate in the
// event hot path), this is a static_assert — and unlike the thread-safety
// cases this one fires under gcc too, so it runs in every lane.
#include <array>

#include "util/inplace_function.hpp"

int main() {
  std::array<char, 256> big{};
  rtmac::util::InplaceFunction<void(), 64> fn{[big] {
    static_cast<void>(big);
  }};  // BAD: 256-byte capture into 64 bytes of inline storage
  fn();
  return 0;
}
