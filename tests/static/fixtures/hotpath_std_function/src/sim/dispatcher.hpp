#pragma once

#include <functional>

namespace rtmac::sim {

struct Dispatcher {
  std::function<void()> callback;
};

}  // namespace rtmac::sim
