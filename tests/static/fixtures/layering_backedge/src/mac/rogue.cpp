#include "net/network.hpp"
