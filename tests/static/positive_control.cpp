// Positive control for the negative-compile suite: correct use of every
// primitive the negative cases abuse, compiled with the exact same flags
// and asserted to SUCCEED. If this fails, the flags are broken and the
// negative cases are passing for the wrong reason.
#include <array>

#include "sim/shard_barrier.hpp"
#include "util/inplace_function.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void increment() RTMAC_EXCLUDES(mutex_) {
    const rtmac::util::LockGuard lock{mutex_};
    ++count_;
  }

  [[nodiscard]] int value() RTMAC_EXCLUDES(mutex_) {
    const rtmac::util::LockGuard lock{mutex_};
    return count_;
  }

 private:
  rtmac::util::Mutex mutex_;
  int count_ RTMAC_GUARDED_BY(mutex_) = 0;
};

int g_mailbox RTMAC_GUARDED_BY(rtmac::sim::shard_barrier) = 0;

void deliver() RTMAC_REQUIRES(rtmac::sim::shard_barrier) { ++g_mailbox; }

void barrier_phase() {
  const rtmac::util::PhantomLock barrier{rtmac::sim::shard_barrier};
  deliver();
}

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  barrier_phase();
  std::array<char, 16> small{};
  rtmac::util::InplaceFunction<void(), 64> fn{[small] {
    static_cast<void>(small);
  }};
  fn();
  return counter.value() == 1 ? 0 : 1;
}
