// Negative-compile case: writing a GUARDED_BY member without holding its
// mutex. Must trip clang -Wthread-safety ("requires holding mutex"); ctest
// asserts the diagnostic text, so a silently clean compile fails the test.
#include "util/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void increment_unlocked() { ++count_; }  // BAD: mutex_ not held

 private:
  rtmac::util::Mutex mutex_;
  int count_ RTMAC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment_unlocked();
  return 0;
}
