// Negative-compile case: taking two mutexes against their declared
// RTMAC_ACQUIRED_AFTER order — the classic ABBA deadlock, caught before it
// can ever hang a run. Ordering is checked under -Wthread-safety-beta
// (added for this case only); must trip "must be acquired before".
#include "util/thread_annotations.hpp"

namespace {

class Ordered {
 public:
  void in_order() {
    first_.lock();
    second_.lock();
    second_.unlock();
    first_.unlock();
  }

  void inverted() {
    second_.lock();
    first_.lock();  // BAD: first_ is declared acquired-before second_
    first_.unlock();
    second_.unlock();
  }

 private:
  rtmac::util::Mutex first_;
  rtmac::util::Mutex second_ RTMAC_ACQUIRED_AFTER(first_);
};

}  // namespace

int main() {
  Ordered ordered;
  ordered.in_order();
  ordered.inverted();
  return 0;
}
