// Negative-compile case: calling a RTMAC_EXCLUDES(mutex_) function while
// that mutex is held — the self-deadlock shape the annotation exists to
// forbid. Must trip clang -Wthread-safety ("while mutex ... is held").
#include "util/thread_annotations.hpp"

namespace {

class Widget {
 public:
  void reload() RTMAC_EXCLUDES(mutex_) {
    const rtmac::util::LockGuard lock{mutex_};
    ++generation_;
  }

  void reload_while_locked() {
    const rtmac::util::LockGuard lock{mutex_};
    reload();  // BAD: reload() would re-acquire mutex_
  }

 private:
  rtmac::util::Mutex mutex_;
  int generation_ RTMAC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Widget widget;
  widget.reload_while_locked();
  return 0;
}
