// Negative-compile case: a function returns with a mutex still locked.
// Must trip clang -Wthread-safety ("still held at the end of function").
#include "util/thread_annotations.hpp"

namespace {

class Leaky {
 public:
  void lock_and_forget() {
    mutex_.lock();
    ++count_;
  }  // BAD: no unlock on the way out

 private:
  rtmac::util::Mutex mutex_;
  int count_ RTMAC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Leaky leaky;
  leaky.lock_and_forget();
  return 0;
}
